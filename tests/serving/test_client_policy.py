"""Isolated tests for the resilient client policy (``repro.serving.client``).

The shard group is a scripted fake, so every mechanism — deadline
expiry, backoff jitter, hedge races, breaker trips — is exercised in
deterministic virtual time with no cluster underneath.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    DeadlineExceededError,
    ShardUnavailableError,
    ShedError,
)
from repro.serving.client import (
    ClientPolicy,
    ClientSession,
    ShardBreaker,
    ShardClient,
)
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us


def run_gen(engine, gen, name="test-op"):
    proc = engine.process(gen, name=name)
    proc.callbacks.append(lambda _ev: None)
    while not proc.done:
        nxt = engine.peek()
        assert nxt is not None, f"{name} deadlocked at t={engine.now}"
        engine.run(until=nxt)
    if proc.exception is not None:
        raise proc.exception
    return proc.value


def sleep_until(engine, when):
    def sleeper():
        if when > engine.now:
            yield when - engine.now

    run_gen(engine, sleeper(), "sleep")


class FakeGroup:
    """Scripted replicated shard group implementing the duck-typed surface."""

    def __init__(self, engine, replicas=3, leader=0):
        self.engine = engine
        self.leader_id = leader
        self._applied = {i: 0 for i in range(replicas)}
        self.read_latency = {i: us(100) for i in range(replicas)}
        self.read_fail = set()  # node ids whose reads come back empty-handed
        self.write_latency = us(200)
        self.write_acks = True
        self.seq = 0
        self.reads = []  # (node, key, started_at)
        self.rediscover_calls = 0
        self.leader_after_rediscover = None

    def replica_ids(self):
        return sorted(self._applied)

    def applied_seq(self, node_id):
        return self._applied[node_id]

    def set_applied(self, node_id, seq):
        self._applied[node_id] = seq

    def read(self, node_id, key):
        self.reads.append((node_id, key, self.engine.now))
        yield self.read_latency[node_id]
        if node_id in self.read_fail:
            return None
        return (b"value-from-%d" % node_id, self._applied[node_id])

    def write(self, key, value):
        yield self.write_latency
        if not self.write_acks:
            return (False, 0)
        self.seq += 1
        for node_id in self._applied:
            self._applied[node_id] = self.seq
        return (True, self.seq)

    def rediscover(self):
        self.rediscover_calls += 1
        if self.leader_after_rediscover is not None:
            self.leader_id = self.leader_after_rediscover
        return self.leader_id


def make_client(engine, group, seed=7, **policy_kwargs):
    policy = ClientPolicy(**policy_kwargs)
    return ShardClient(
        engine, 0, group, policy, RandomStream(seed, "client-test")
    )


class TestDeadlines:
    def test_slow_read_resolves_exactly_at_deadline(self):
        """An op against a stuck shard raises a typed error *at* the
        deadline — it neither hangs past it nor gives up early."""
        engine = Engine()
        group = FakeGroup(engine)
        group.read_latency = {i: ms(500) for i in range(3)}
        client = make_client(engine, group, op_deadline_ns=ms(5))
        session = ClientSession("t0")
        with pytest.raises(DeadlineExceededError) as exc_info:
            run_gen(engine, client.read(session, b"k"))
        assert exc_info.value.op == "get"
        assert exc_info.value.elapsed_ns <= ms(5)
        assert engine.now == ms(5)  # resolved exactly at the deadline

    def test_slow_write_is_counted_indeterminate(self):
        engine = Engine()
        group = FakeGroup(engine)
        group.write_latency = ms(500)
        client = make_client(engine, group, op_deadline_ns=ms(4))
        with pytest.raises(DeadlineExceededError) as exc_info:
            run_gen(engine, client.write(ClientSession("t0"), b"k", b"v"))
        assert exc_info.value.op == "put"
        assert exc_info.value.elapsed_ns <= ms(4)
        assert client.stats.get("indeterminate") == 1

    def test_backoff_never_sleeps_past_deadline(self):
        """A retry whose backoff would overshoot raises instead of
        sleeping: at resolution, elapsed <= deadline always holds."""
        engine = Engine()
        group = FakeGroup(engine)
        group.read_fail = {0, 1, 2}
        client = make_client(
            engine,
            group,
            op_deadline_ns=ms(1),
            base_backoff_ns=us(400),
            max_attempts=8,
            hedge_reads=False,
        )
        with pytest.raises(DeadlineExceededError):
            run_gen(engine, client.read(ClientSession("t0"), b"k"))
        assert engine.now <= ms(1)


class TestBackoff:
    def test_same_seed_reproduces_jitter_exactly(self):
        engine = Engine()
        group = FakeGroup(engine)
        a = make_client(engine, group, seed=11)
        b = make_client(engine, group, seed=11)
        assert [a.backoff_ns(i) for i in range(6)] == [
            b.backoff_ns(i) for i in range(6)
        ]

    def test_different_seeds_desynchronize(self):
        engine = Engine()
        group = FakeGroup(engine)
        a = make_client(engine, group, seed=11)
        b = make_client(engine, group, seed=12)
        assert [a.backoff_ns(i) for i in range(6)] != [
            b.backoff_ns(i) for i in range(6)
        ]

    def test_exponential_envelope_with_cap(self):
        engine = Engine()
        client = make_client(
            engine,
            FakeGroup(engine),
            base_backoff_ns=us(200),
            max_backoff_ns=ms(8),
            backoff_jitter=0.5,
        )
        for attempt in range(12):
            nominal = min(ms(8), us(200) * (1 << attempt))
            delay = client.backoff_ns(attempt)
            assert 1 <= delay <= nominal * 1.5 + 1


class TestHedging:
    def test_fast_primary_never_hedges(self):
        engine = Engine()
        group = FakeGroup(engine)
        client = make_client(engine, group)
        outcome = run_gen(engine, client.read(ClientSession("t0"), b"k"))
        assert outcome.node_id == 0 and not outcome.hedged
        assert client.stats.get("hedges_launched", 0) == 0
        assert len(group.reads) == 1

    def test_slow_primary_hedges_and_loser_is_cancelled(self):
        """Quiet primary -> hedge to the most caught-up follower; the
        first success wins and the abandoned arm is counted cancelled."""
        engine = Engine()
        group = FakeGroup(engine)
        group.read_latency[0] = ms(20)  # leader glacial
        group.read_latency[1] = us(150)
        group.read_latency[2] = us(100)
        group.set_applied(2, 5)  # node 2 most caught up
        client = make_client(engine, group, hedge_delay_ns=ms(2))
        outcome = run_gen(engine, client.read(ClientSession("t0"), b"k"))
        assert outcome.hedged and outcome.node_id == 2
        assert outcome.value == b"value-from-2"
        assert client.stats.get("hedges_launched") == 1
        assert client.stats.get("hedges_won") == 1
        assert client.stats.get("hedges_cancelled") == 1
        # Resolved at hedge_delay + follower latency, far before the
        # primary would have answered.
        assert engine.now == ms(2) + us(100)

    def test_primary_finishing_first_beats_the_hedge(self):
        engine = Engine()
        group = FakeGroup(engine)
        group.read_latency[0] = ms(3)  # slow enough to trigger the hedge
        group.read_latency[1] = ms(30)  # hedge arm much slower
        group.read_latency[2] = ms(30)
        client = make_client(engine, group, hedge_delay_ns=ms(2))
        outcome = run_gen(engine, client.read(ClientSession("t0"), b"k"))
        assert not outcome.hedged and outcome.node_id == 0
        assert client.stats.get("hedges_launched") == 1
        assert client.stats.get("hedges_won", 0) == 0
        assert client.stats.get("hedges_cancelled") == 1

    def test_hedge_targets_respect_session_floor(self):
        """A follower behind the session's write floor is not a legal
        hedge target (it could time-travel before the session's writes)."""
        engine = Engine()
        group = FakeGroup(engine)
        group.read_latency[0] = ms(20)
        session = ClientSession("t0")
        session.observe_write(0, 7)  # floor = 7; followers applied = 0
        client = make_client(engine, group, hedge_delay_ns=ms(2), op_deadline_ns=ms(25))
        outcome = run_gen(engine, client.read(session, b"k"))
        assert client.stats.get("hedges_launched", 0) == 0
        assert outcome.node_id == 0  # waited the primary out instead
        assert session.ryw_violations  # and the stale leader read is flagged

    def test_leaderless_read_degrades_to_caught_up_follower(self):
        engine = Engine()
        group = FakeGroup(engine, leader=0)
        group.leader_id = None
        outcome = run_gen(
            engine, make_client(engine, group).read(ClientSession("t0"), b"k")
        )
        assert outcome.node_id in (0, 1, 2)


class TestBreaker:
    def test_retry_storm_is_suppressed_on_a_hard_down_shard(self):
        """Once the breaker trips, further ops shed instantly instead of
        piling attempts onto the dead shard."""
        engine = Engine()
        group = FakeGroup(engine)
        group.read_fail = {0, 1, 2}
        client = make_client(
            engine,
            group,
            hedge_reads=False,
            max_attempts=5,
            breaker_failure_threshold=8,
            op_deadline_ns=ms(40),
        )
        session = ClientSession("t0")
        with pytest.raises(ShardUnavailableError):
            run_gen(engine, client.read(session, b"k"))  # 5 failed attempts
        with pytest.raises(ShedError) as exc_info:
            run_gen(engine, client.read(session, b"k"))  # trips at 8
        assert exc_info.value.reason == "breaker"
        attempts_before = len(group.reads)
        assert attempts_before == 8
        for _ in range(10):
            with pytest.raises(ShedError):
                run_gen(engine, client.read(session, b"k"))
        assert len(group.reads) == attempts_before  # zero new load sent
        assert client.breaker.open and client.breaker.trips == 1
        assert client.stats.get("breaker_fastfail", 0) >= 10

    def test_half_open_probe_recovers_the_shard(self):
        engine = Engine()
        group = FakeGroup(engine)
        group.read_fail = {0, 1, 2}
        client = make_client(
            engine,
            group,
            hedge_reads=False,
            max_attempts=4,
            breaker_failure_threshold=4,
            breaker_cooloff_ns=ms(10),
        )
        session = ClientSession("t0")
        with pytest.raises((ShardUnavailableError, ShedError)):
            run_gen(engine, client.read(session, b"k"))
        assert client.breaker.open
        group.read_fail.clear()  # shard comes back
        sleep_until(engine, engine.now + ms(11))  # past the cooloff
        outcome = run_gen(engine, client.read(session, b"k"))  # the probe
        assert outcome.value == b"value-from-0"
        assert not client.breaker.open

    def test_failed_probe_reopens(self):
        engine = Engine()
        policy = ClientPolicy(breaker_failure_threshold=2, breaker_cooloff_ns=ms(5))
        breaker = ShardBreaker(policy)
        breaker.on_failure(0)
        breaker.on_failure(10)
        assert breaker.open
        assert not breaker.allow(100)  # still cooling off
        assert breaker.allow(ms(6))  # the half-open probe
        assert not breaker.allow(ms(6))  # only one probe at a time
        breaker.on_failure(ms(6))
        assert breaker.open  # probe failed: re-opened
        assert breaker.allow(ms(12))
        breaker.on_success(ms(12))
        assert not breaker.open


class TestWrites:
    def test_write_acks_and_advances_the_session_floor(self):
        engine = Engine()
        group = FakeGroup(engine)
        client = make_client(engine, group)
        session = ClientSession("t0")
        seq = run_gen(engine, client.write(session, b"k", b"v"))
        assert seq == 1
        assert session.seq_floor(0) == 1

    def test_leaderless_write_rediscovers(self):
        engine = Engine()
        group = FakeGroup(engine)
        group.leader_id = None
        group.leader_after_rediscover = 1
        client = make_client(engine, group)
        seq = run_gen(engine, client.write(ClientSession("t0"), b"k", b"v"))
        assert seq == 1
        assert group.rediscover_calls == 1
        assert client.stats.get("rediscoveries") == 1

    def test_nacked_writes_retry_then_exhaust(self):
        engine = Engine()
        group = FakeGroup(engine)
        group.write_acks = False
        client = make_client(
            engine, group, max_attempts=3, breaker_failure_threshold=99
        )
        with pytest.raises(ShardUnavailableError) as exc_info:
            run_gen(engine, client.write(ClientSession("t0"), b"k", b"v"))
        assert exc_info.value.attempts == 3
        assert client.stats.get("write_retries") == 2
