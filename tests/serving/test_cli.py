"""Tests for ``python -m repro.serving`` and the sweep runner."""

import pytest

from repro.serving.__main__ import main
from repro.serving.sweep import ServingPoint, run_serving_point, run_sweep

TINY = [
    "--keys", "200",
    "--users", "20000",
    "--duration", "0.05",
]


def run_cli(capsys, *extra):
    assert main([*TINY, *extra]) == 0
    return capsys.readouterr().out


def test_cli_prints_slo_digest(capsys):
    out = run_cli(capsys)
    assert "tenant-slo digest:" in out
    assert "shared block cache:" in out
    assert "write-buffer budget:" in out


def test_cli_shard_sweep_prints_scaling_table(capsys):
    out = run_cli(capsys, "--shard-sweep", "1,2", "--jobs", "1")
    assert "shard scaling" in out
    assert "x1 shard(s):" in out
    assert "x2 shard(s):" in out


def test_cli_jobs_output_identical(capsys):
    """The hard sweep contract: --jobs N output is byte-identical to serial."""
    serial = run_cli(capsys, "--shard-sweep", "1,2", "--jobs", "1")
    parallel = run_cli(capsys, "--shard-sweep", "1,2", "--jobs", "2")
    assert serial == parallel


def test_cli_rejects_bad_args(capsys):
    with pytest.raises(SystemExit):
        main(["--shards", "0"])
    with pytest.raises(SystemExit):
        main(["--shard-sweep", "1,zero"])


def test_sweep_points_are_picklable_and_ordered():
    import pickle

    points = [ServingPoint(shards=s, duration_s=0.02, key_count=100,
                           users_per_tenant=10_000) for s in (1, 2)]
    assert pickle.loads(pickle.dumps(points)) == points
    report = run_sweep(points, jobs=2)
    assert [r.shards for r in report.results] == [1, 2]
    assert "shard scaling" in report.scaling_table()


def test_run_serving_point_matches_direct_run():
    point = ServingPoint(shards=2, duration_s=0.05, key_count=150,
                         users_per_tenant=15_000)
    a = run_serving_point(point)
    b = run_serving_point(point)
    assert a.tenant_rows == b.tenant_rows
    assert a.shard_rows == b.shard_rows
