"""Tests for consistent-hash key routing (``repro.serving.router``)."""

import pytest

from repro.errors import WorkloadError
from repro.serving.router import HashRing
from repro.workloads.generators import encode_key


def sample_keys(count=2000):
    return [encode_key(i) for i in range(count)]


class TestHashRing:
    def test_range_and_determinism(self):
        """Two independently built rings route every key identically."""
        a, b = HashRing(4), HashRing(4)
        for key in sample_keys():
            shard = a.shard_for(key)
            assert 0 <= shard < 4
            assert shard == b.shard_for(key)

    def test_single_shard_takes_everything(self):
        ring = HashRing(1)
        assert all(ring.shard_for(k) == 0 for k in sample_keys(200))

    def test_balance(self):
        """With virtual nodes, no shard owns a wildly outsized key share."""
        ring = HashRing(4, vnodes=64)
        counts = ring.distribution(sample_keys(8000))
        assert sum(counts.values()) == 8000
        for shard in range(4):
            assert counts[shard] > 8000 // 4 // 4  # > 1/4 of a fair share

    def test_scale_out_stability(self):
        """Growing N -> N+1 shards remaps a minority of keys, not ~all.

        This is the consistent-hashing contract (vs ``hash % N``, which
        remaps ~N/(N+1) of the keys on every resize).
        """
        keys = sample_keys(4000)
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(
            1 for k in keys if before.shard_for(k) != after.shard_for(k)
        )
        assert moved / len(keys) < 0.45  # ideal ~1/5; modulo would be ~4/5

    def test_partition_preserves_order_and_total(self):
        ring = HashRing(3)
        keys = sample_keys(500)
        parts = ring.partition(keys)
        assert sum(len(p) for p in parts) == len(keys)
        for shard, part in enumerate(parts):
            assert part == [k for k in keys if ring.shard_for(k) == shard]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            HashRing(0)
        with pytest.raises(WorkloadError):
            HashRing(2, vnodes=0)


class TestRingMembership:
    """Failover-driven remove/re-add must be exactly symmetric.

    When a shard group goes down and later rejoins, the ring must route
    every key exactly as before the outage — ring points are derived
    from the member's *name*, never from insertion order or ring state,
    so remove+add is a true inverse (the regression this pins down)."""

    def test_remove_then_readd_restores_identical_mapping(self):
        ring = HashRing(4)
        keys = sample_keys(3000)
        before = [ring.shard_for(k) for k in keys]
        ring.remove_node(2)
        assert 2 not in ring.members()
        during = [ring.shard_for(k) for k in keys]
        assert 2 not in set(during)
        ring.add_node(2)
        after = [ring.shard_for(k) for k in keys]
        assert after == before
        assert sorted(ring.members()) == [0, 1, 2, 3]

    def test_removal_only_moves_the_removed_shards_keys(self):
        ring = HashRing(4)
        keys = sample_keys(3000)
        before = {k: ring.shard_for(k) for k in keys}
        ring.remove_node(1)
        for k in keys:
            if before[k] != 1:
                assert ring.shard_for(k) == before[k]

    def test_remove_readd_in_any_order_is_stable(self):
        """Membership churn in different orders converges to one mapping."""
        keys = sample_keys(1500)
        a, b = HashRing(5), HashRing(5)
        a.remove_node(1)
        a.remove_node(3)
        a.add_node(1)
        a.add_node(3)
        b.remove_node(3)
        b.remove_node(1)
        b.add_node(3)
        b.add_node(1)
        fresh = HashRing(5)
        for k in keys:
            assert a.shard_for(k) == b.shard_for(k) == fresh.shard_for(k)

    def test_membership_validation(self):
        ring = HashRing(2)
        with pytest.raises(WorkloadError):
            ring.add_node(0)  # already present
        with pytest.raises(WorkloadError):
            ring.add_node(2)  # outside [0, shards)
        with pytest.raises(WorkloadError):
            ring.remove_node(5)  # not a member
        ring.remove_node(1)
        with pytest.raises(WorkloadError):
            ring.remove_node(0)  # cannot empty the ring
