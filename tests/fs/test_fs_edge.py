"""Additional filesystem edge cases: interplay of sync, crash, reuse."""

import pytest

from repro.errors import FileSystemError
from repro.fs.filesystem import EXTENT_BYTES
from repro.sim.units import KB, MB
from repro.storage.profiles import sata_flash_ssd, xpoint_ssd
from tests.conftest import make_fs, run_op


def drive(engine, gen):
    return run_op(engine, gen)


def test_sync_empty_file_is_cheap(engine):
    fs = make_fs(engine, profile=xpoint_ssd())
    f = fs.create("empty")

    def proc():
        yield from f.sync()

    t0 = engine.now
    drive(engine, proc())
    assert engine.now == t0  # nothing to write


def test_double_sync_second_is_instant(engine):
    fs = make_fs(engine, profile=xpoint_ssd())
    f = fs.create("f")
    f.append(64 * KB)

    def proc():
        yield from f.sync()
        t_mid = engine.now
        yield from f.sync()
        return t_mid

    t_mid = drive(engine, proc())
    assert engine.now == t_mid


def test_interleaved_append_sync(engine):
    fs = make_fs(engine, profile=xpoint_ssd())
    f = fs.create("f")

    def proc():
        for _ in range(5):
            f.append(16 * KB)
            yield from f.sync()

    drive(engine, proc())
    assert f.synced_size == f.size == 80 * KB


def test_read_spanning_extents_device_counts(engine):
    fs = make_fs(engine, profile=xpoint_ssd())
    f = fs.install_synced("big", 2 * EXTENT_BYTES)
    ev = f.read(EXTENT_BYTES - 2 * KB, 4 * KB)  # straddles the boundary
    assert ev is not None

    def proc():
        yield ev

    drive(engine, proc())
    assert fs.device.reads == 2  # one per physical extent run


def test_sequential_flag_passes_through(engine):
    flat = sata_flash_ssd().with_overrides(jitter_sigma=0.0)

    def timed(sequential):
        fs = make_fs(engine, profile=flat)
        g = fs.install_synced("x", MB)
        start = engine.now
        ev = g.read(0, 256 * KB, sequential=sequential)

        def proc():
            yield ev

        drive(engine, proc())
        return engine.now - start

    assert timed(True) < timed(False)


def test_crash_then_reuse_paths(engine):
    fs = make_fs(engine, profile=xpoint_ssd())
    f = fs.create("wal/1.log")
    f.append(4 * KB, record="r")
    fs.crash()
    # The file still exists (metadata is durable in this model); deleting
    # and recreating the path must work.
    fs.delete("wal/1.log")
    g = fs.create("wal/1.log")
    assert g.size == 0


def test_writeback_stall_event_resolves(engine):
    """A backpressured append's event eventually fires."""
    fs = make_fs(engine, profile=sata_flash_ssd())
    f = fs.create("hot", writeback_bytes=64 * KB, dirty_limit_bytes=128 * KB)

    def proc():
        waited = 0
        for _ in range(32):
            ev = f.append(64 * KB)
            if ev is not None:
                before = engine.now
                yield ev
                waited += engine.now - before
        return waited

    waited = drive(engine, proc())
    assert waited > 0  # backpressure actually slowed the writer


def test_zero_capacity_page_cache_still_works(engine):
    from repro.fs.page_cache import PageCache
    from repro.fs.filesystem import SimFileSystem
    from repro.sim.rng import RandomStream
    from repro.storage.device import StorageDevice

    device = StorageDevice(engine, xpoint_ssd(), RandomStream(1))
    fs = SimFileSystem(engine, device, PageCache(0))
    f = fs.install_synced("uncached", MB)
    ev = f.read(0, 4 * KB)
    assert ev is not None  # nothing is ever cached

    def proc():
        yield ev

    drive(engine, proc())
    ev2 = f.read(0, 4 * KB)
    assert ev2 is not None  # still a miss
