"""Regression tests: I/O on deleted or closed SimFiles raises a typed error.

Historically these paths raised bare asserts (or silently succeeded),
which hid use-after-free bugs in compaction's input-file handling.  Now
every access through a stale handle raises :class:`StaleFileError`, which
is both a :class:`FileSystemError` and a :class:`DBError` so the DB's
error paths can treat it uniformly.
"""

import pytest

from repro.errors import DBError, FileSystemError, StaleFileError
from repro.sim.units import kb
from tests.conftest import make_fs, run_op


@pytest.fixture
def fs(engine):
    return make_fs(engine)


class TestDeletedFiles:
    def _deleted_file(self, fs):
        f = fs.create("victim")
        f.append(kb(4))
        fs.delete("victim")
        return f

    def test_read_raises(self, engine, fs):
        f = self._deleted_file(fs)
        with pytest.raises(StaleFileError, match="deleted"):
            run_op(engine, f.read(0, 512))

    def test_append_raises(self, fs):
        f = self._deleted_file(fs)
        with pytest.raises(StaleFileError, match="deleted"):
            f.append(512)

    def test_sync_raises(self, engine, fs):
        f = self._deleted_file(fs)
        with pytest.raises(StaleFileError, match="deleted"):
            run_op(engine, f.sync())


class TestClosedFiles:
    def _closed_file(self, fs):
        f = fs.create("done")
        f.append(kb(4))
        f.close()
        return f

    def test_read_raises(self, engine, fs):
        f = self._closed_file(fs)
        with pytest.raises(StaleFileError, match="closed"):
            run_op(engine, f.read(0, 512))

    def test_append_raises(self, fs):
        f = self._closed_file(fs)
        with pytest.raises(StaleFileError, match="closed"):
            f.append(512)

    def test_sync_raises(self, engine, fs):
        f = self._closed_file(fs)
        with pytest.raises(StaleFileError, match="closed"):
            run_op(engine, f.sync())

    def test_close_is_idempotent(self, fs):
        f = fs.create("done")
        f.close()
        f.close()  # a second close is a no-op, not an error

    def test_close_keeps_data_on_disk(self, fs):
        """close() is a handle-state change, not a delete."""
        f = fs.create("done")
        f.append(kb(4))
        f.close()
        assert fs.exists("done")
        assert fs.open("done").size == kb(4)


class TestErrorTyping:
    def test_stale_file_error_is_fs_and_db_error(self, fs):
        f = fs.create("x")
        fs.delete("x")
        try:
            f.append(1)
        except StaleFileError as e:
            assert isinstance(e, FileSystemError)
            assert isinstance(e, DBError)
            assert "x" in str(e)
        else:
            pytest.fail("append on deleted file did not raise")
