"""Tests for the OS page cache model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FileSystemError
from repro.fs.page_cache import PAGE_SIZE, PageCache


def test_miss_then_hit():
    cache = PageCache(64 * PAGE_SIZE)
    holes = cache.access(1, 0, PAGE_SIZE)
    assert holes == [(0, PAGE_SIZE)]
    cache.fill(1, 0, PAGE_SIZE)
    assert cache.access(1, 0, PAGE_SIZE) == []
    assert cache.stats.get("page_hits") == 1
    assert cache.stats.get("page_misses") == 1


def test_partial_miss_coalesced():
    cache = PageCache(64 * PAGE_SIZE)
    cache.fill(1, PAGE_SIZE, PAGE_SIZE)  # page 1 resident
    holes = cache.access(1, 0, 3 * PAGE_SIZE)  # pages 0,1,2
    assert holes == [(0, PAGE_SIZE), (2 * PAGE_SIZE, PAGE_SIZE)]


def test_adjacent_misses_merge_into_one_hole():
    cache = PageCache(64 * PAGE_SIZE)
    holes = cache.access(1, 0, 4 * PAGE_SIZE)
    assert holes == [(0, 4 * PAGE_SIZE)]


def test_unaligned_range_covers_both_pages():
    cache = PageCache(64 * PAGE_SIZE)
    holes = cache.access(1, PAGE_SIZE - 10, 20)  # straddles pages 0 and 1
    assert holes == [(0, 2 * PAGE_SIZE)]


def test_files_do_not_collide():
    cache = PageCache(64 * PAGE_SIZE)
    cache.fill(1, 0, PAGE_SIZE)
    assert cache.access(2, 0, PAGE_SIZE) != []


def test_lru_eviction_order():
    cache = PageCache(2 * PAGE_SIZE)
    cache.fill(1, 0, PAGE_SIZE)  # page A
    cache.fill(1, PAGE_SIZE, PAGE_SIZE)  # page B
    cache.access(1, 0, PAGE_SIZE)  # touch A: B is now LRU
    cache.fill(1, 2 * PAGE_SIZE, PAGE_SIZE)  # page C evicts B
    assert cache.contains(1, 0, PAGE_SIZE)  # A stays
    assert not cache.contains(1, PAGE_SIZE, PAGE_SIZE)  # B evicted
    assert cache.stats.get("pages_evicted") == 1


def test_capacity_enforced():
    cache = PageCache(8 * PAGE_SIZE)
    cache.fill(1, 0, 32 * PAGE_SIZE)
    assert len(cache) == 8
    assert cache.resident_bytes == 8 * PAGE_SIZE


def test_invalidate_file_drops_only_that_file():
    cache = PageCache(64 * PAGE_SIZE)
    cache.fill(1, 0, 4 * PAGE_SIZE)
    cache.fill(2, 0, 4 * PAGE_SIZE)
    cache.invalidate_file(1)
    assert not cache.contains(1, 0, PAGE_SIZE)
    assert cache.contains(2, 0, PAGE_SIZE)
    assert len(cache) == 4


def test_zero_and_negative_access_rejected():
    cache = PageCache(4 * PAGE_SIZE)
    with pytest.raises(FileSystemError):
        cache.access(1, 0, 0)


def test_fill_zero_is_noop():
    cache = PageCache(4 * PAGE_SIZE)
    cache.fill(1, 0, 0)
    assert len(cache) == 0


def test_hit_rate():
    cache = PageCache(64 * PAGE_SIZE)
    cache.access(1, 0, PAGE_SIZE)
    cache.fill(1, 0, PAGE_SIZE)
    cache.access(1, 0, PAGE_SIZE)
    assert cache.hit_rate() == pytest.approx(0.5)


def test_custom_page_size():
    cache = PageCache(4 * 16384, page_size=16384)
    holes = cache.access(1, 0, 16384)
    assert holes == [(0, 16384)]


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # 0=access, 1=fill
            st.integers(min_value=0, max_value=3),  # file id
            st.integers(min_value=0, max_value=63),  # page index
        ),
        max_size=200,
    )
)
def test_matches_reference_lru_model(ops):
    """The cache agrees with a straightforward reference implementation."""
    capacity = 8
    cache = PageCache(capacity * PAGE_SIZE)
    reference: list = []  # LRU order, most recent last

    def ref_touch(key):
        if key in reference:
            reference.remove(key)
            reference.append(key)
            return True
        return False

    def ref_fill(key):
        if key in reference:
            reference.remove(key)
        reference.append(key)
        while len(reference) > capacity:
            reference.pop(0)

    for kind, file_id, page in ops:
        key = (file_id, page)
        offset = page * PAGE_SIZE
        if kind == 0:
            expected_hit = ref_touch(key)
            holes = cache.access(file_id, offset, PAGE_SIZE)
            assert (holes == []) == expected_hit
            if not expected_hit:
                cache.fill(file_id, offset, PAGE_SIZE)
                ref_fill(key)
        else:
            cache.fill(file_id, offset, PAGE_SIZE)
            ref_fill(key)
    assert len(cache) == len(reference)
    for file_id, page in reference:
        assert cache.contains(file_id, page * PAGE_SIZE, PAGE_SIZE)
