"""Tests for the extent-based simulated filesystem."""

import pytest

from repro.errors import (
    FileExistsInFS,
    FileNotFoundInFS,
    FileSystemError,
    OutOfSpaceError,
)
from repro.fs.filesystem import EXTENT_BYTES, SimFileSystem
from repro.fs.page_cache import PageCache
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import KB, MB, mb
from repro.storage.device import StorageDevice
from repro.storage.profiles import null_device, xpoint_ssd
from tests.conftest import make_fs


def run_gen(engine, gen):
    p = engine.process(gen)
    engine.run()
    if p.exception:
        raise p.exception
    return p.value


class TestNamespace:
    def test_create_open_exists(self, engine, null_fs):
        f = null_fs.create("a/b.sst")
        assert null_fs.exists("a/b.sst")
        assert null_fs.open("a/b.sst") is f

    def test_create_duplicate_raises(self, null_fs):
        null_fs.create("x")
        with pytest.raises(FileExistsInFS):
            null_fs.create("x")

    def test_open_missing_raises(self, null_fs):
        with pytest.raises(FileNotFoundInFS):
            null_fs.open("missing")

    def test_delete(self, null_fs):
        null_fs.create("x")
        null_fs.delete("x")
        assert not null_fs.exists("x")
        with pytest.raises(FileNotFoundInFS):
            null_fs.delete("x")

    def test_list_prefix_sorted(self, null_fs):
        for name in ("wal/2", "wal/1", "sst/9"):
            null_fs.create(name)
        assert null_fs.list("wal/") == ["wal/1", "wal/2"]
        assert null_fs.list() == ["sst/9", "wal/1", "wal/2"]

    def test_rename(self, null_fs):
        f = null_fs.create("old")
        null_fs.rename("old", "new")
        assert null_fs.open("new") is f
        assert not null_fs.exists("old")

    def test_rename_collision(self, null_fs):
        null_fs.create("a")
        null_fs.create("b")
        with pytest.raises(FileExistsInFS):
            null_fs.rename("a", "b")


class TestAppendReadSync:
    def test_append_grows_size(self, null_fs):
        f = null_fs.create("f")
        f.append(100)
        f.append(50)
        assert f.size == 150

    def test_append_nonpositive_raises(self, null_fs):
        f = null_fs.create("f")
        with pytest.raises(FileSystemError):
            f.append(0)

    def test_read_beyond_eof_raises(self, null_fs):
        f = null_fs.create("f")
        f.append(100)
        with pytest.raises(FileSystemError):
            f.read(50, 100)

    def test_read_after_append_hits_page_cache(self, engine, null_fs):
        f = null_fs.create("f")
        f.append(4 * KB)
        assert f.read(0, 4 * KB) is None  # fully cached: no wait event
        assert null_fs.stats.get("cached_reads") == 1

    def test_cold_read_goes_to_device(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        f = fs.install_synced("cold", MB)
        ev = f.read(0, 4 * KB)
        assert ev is not None

        def proc():
            yield ev

        run_gen(engine, proc())
        assert fs.stats.get("device_reads") == 1

    def test_sync_marks_durable(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        f = fs.create("f")
        f.append(64 * KB)
        assert f.synced_size == 0

        def proc():
            yield from f.sync()

        run_gen(engine, proc())
        assert f.synced_size == 64 * KB

    def test_writeback_threshold_triggers_device_writes(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        f = fs.create("f", writeback_bytes=64 * KB, dirty_limit_bytes=mb(8))
        f.append(128 * KB)  # crosses the 64 KB writeback threshold
        engine.run()
        assert fs.device.writes > 0
        assert f.synced_size == 128 * KB  # async writeback completed

    def test_backpressure_event_at_dirty_limit(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        f = fs.create("f", writeback_bytes=64 * KB, dirty_limit_bytes=128 * KB)
        events = [f.append(64 * KB) for _ in range(8)]
        assert any(ev is not None for ev in events)
        assert fs.stats.get("writeback_stalls") > 0

    def test_append_on_deleted_file_raises(self, null_fs):
        f = null_fs.create("f")
        null_fs.delete("f")
        with pytest.raises(FileSystemError):
            f.append(10)


class TestExtents:
    def test_extents_allocated_on_demand(self, null_fs):
        f = null_fs.create("f")
        f.append(EXTENT_BYTES + 1)
        assert len(f.extents) == 2

    def test_extents_reused_after_delete(self, null_fs):
        f1 = null_fs.create("f1")
        f1.append(EXTENT_BYTES)
        phys = list(f1.extents)
        null_fs.delete("f1")
        f2 = null_fs.create("f2")
        f2.append(EXTENT_BYTES)
        assert f2.extents == phys

    def test_out_of_space(self, engine):
        device = StorageDevice(engine, null_device(capacity_bytes=2 * EXTENT_BYTES),
                               RandomStream(1))
        fs = SimFileSystem(engine, device, PageCache(mb(1)))
        f = fs.create("big")
        with pytest.raises(OutOfSpaceError):
            f.append(3 * EXTENT_BYTES)

    def test_physical_runs_respect_extent_boundaries(self, null_fs):
        f = null_fs.create("f")
        f.append(2 * EXTENT_BYTES)
        runs = list(null_fs._physical_runs(f, EXTENT_BYTES - 100, 200))
        assert len(runs) == 2
        assert runs[0][1] == 100
        assert runs[1][1] == 100

    def test_quota_enforced_on_append(self, null_fs):
        null_fs.set_quota(2 * EXTENT_BYTES)
        f = null_fs.create("f")
        f.append(2 * EXTENT_BYTES)  # exactly at the quota: fine
        with pytest.raises(OutOfSpaceError) as exc_info:
            f.append(1)
        assert exc_info.value.path == "f"
        assert exc_info.value.free_bytes == 0
        assert null_fs.stats.get("quota_enospc") == 1

    def test_quota_enforced_on_create(self, null_fs):
        null_fs.set_quota(EXTENT_BYTES)
        null_fs.create("a").append(EXTENT_BYTES)
        with pytest.raises(OutOfSpaceError):
            null_fs.create("b")

    def test_failed_append_reserves_nothing(self, null_fs):
        """ENOSPC mid-growth must not leak half-allocated extents."""
        null_fs.set_quota(2 * EXTENT_BYTES)
        f = null_fs.create("f")
        used_before = null_fs.used_bytes()
        with pytest.raises(OutOfSpaceError):
            f.append(3 * EXTENT_BYTES)
        assert null_fs.used_bytes() == used_before
        assert f.size == 0
        f.append(EXTENT_BYTES)  # the survivor still has room

    def test_quota_capacity_accounting(self, null_fs):
        assert null_fs.free_bytes() == null_fs.capacity_bytes()
        null_fs.set_quota(3 * EXTENT_BYTES)
        assert null_fs.capacity_bytes() == 3 * EXTENT_BYTES
        f = null_fs.create("f")
        f.append(EXTENT_BYTES)
        assert null_fs.used_bytes() == EXTENT_BYTES
        assert null_fs.free_bytes() == 2 * EXTENT_BYTES
        null_fs.set_quota(None)  # lifting restores device capacity
        assert null_fs.free_bytes() > 2 * EXTENT_BYTES

    def test_quota_lift_unblocks_growth(self, null_fs):
        null_fs.set_quota(EXTENT_BYTES)
        f = null_fs.create("f")
        f.append(EXTENT_BYTES)
        with pytest.raises(OutOfSpaceError):
            f.append(1)
        null_fs.set_quota(None)
        f.append(EXTENT_BYTES)
        assert f.size == 2 * EXTENT_BYTES

    def test_negative_quota_rejected(self, null_fs):
        with pytest.raises(FileSystemError):
            null_fs.set_quota(-1)

    def test_install_synced(self, null_fs):
        f = null_fs.install_synced("pre", 3 * EXTENT_BYTES)
        assert f.size == f.synced_size == 3 * EXTENT_BYTES
        assert len(f.extents) == 3
        # Installed content is cold: a read misses the page cache.
        assert not null_fs.page_cache.contains(f.file_id, 0, 4 * KB)


class TestCrash:
    def test_crash_truncates_unsynced(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        f = fs.create("f")
        f.append(16 * KB, record="r1")

        def proc():
            yield from f.sync()

        run_gen(engine, proc())
        f.append(16 * KB, record="r2")  # never synced
        fs.crash()
        assert f.size == 16 * KB
        assert [rec for _, rec in f.records] == ["r1"]

    def test_crash_drops_page_cache(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        f = fs.create("f")
        f.append(4 * KB)
        fs.crash()
        assert not fs.page_cache.contains(f.file_id, 0, 4 * KB)

    def test_records_below_watermark_survive(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        f = fs.create("f", writeback_bytes=8 * KB)
        for i in range(10):
            f.append(4 * KB, record=f"r{i}")
        engine.run()  # let async writeback finish
        synced_before = f.synced_size
        f.append(4 * KB, record="lost")
        fs.crash()
        kept = [rec for _, rec in f.records]
        assert "lost" not in kept
        assert len(kept) == synced_before // (4 * KB)
