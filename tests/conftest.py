"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.fs.filesystem import SimFileSystem
from repro.fs.page_cache import PageCache
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import kb, mb
from repro.storage.device import StorageDevice
from repro.storage.profiles import null_device, xpoint_ssd

settings.register_profile("repro", max_examples=50, deadline=None)
settings.load_profile("repro")


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> RandomStream:
    return RandomStream(42, "tests")


def make_fs(engine: Engine, profile=None, cache_bytes: int = mb(16)) -> SimFileSystem:
    """A filesystem on a fresh device (instant 'null' device by default)."""
    device = StorageDevice(engine, profile or null_device(), RandomStream(1))
    return SimFileSystem(engine, device, PageCache(cache_bytes))


@pytest.fixture
def null_fs(engine: Engine) -> SimFileSystem:
    return make_fs(engine)


def tiny_options(**overrides) -> Options:
    """Options small enough that a few thousand puts exercise everything."""
    base = dict(
        write_buffer_size=kb(64),
        max_bytes_for_level_base=kb(256),
        target_file_size_base=kb(64),
        block_cache_bytes=kb(64),
        memtable_rep="hash",
        name="tiny-test",
    )
    base.update(overrides)
    return Options(**base)


def make_db(engine: Engine, profile=None, options: Options | None = None, **fs_kwargs) -> DB:
    """A DB on a fresh machine (null device unless told otherwise)."""
    fs = make_fs(engine, profile=profile, **fs_kwargs)
    return DB(engine, fs, options or tiny_options())


def run_op(engine: Engine, gen):
    """Drive one DB operation to completion on an idle-ish engine."""
    proc = engine.process(gen, name="test-op")
    proc.callbacks.append(lambda _ev: None)  # mark as joined: errors re-raise below
    while not proc.done:
        nxt = engine.peek()
        assert nxt is not None, "operation deadlocked"
        engine.run(until=nxt)
    if proc.exception is not None:
        raise proc.exception
    return proc.value


@pytest.fixture
def xpoint_db(engine: Engine) -> DB:
    return make_db(engine, profile=xpoint_ssd(), options=tiny_options())
