"""Tests for the deterministic simulated network (repro.net)."""

import pytest

from repro.faults import HEAL, NET_DELAY, NET_DROP, PARTITION, FaultSpec
from repro.net import NetConfig, Network
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us


def make_net(n=3, seed=7, **cfg):
    engine = Engine()
    net = Network(engine, n, RandomStream(seed, "net"), NetConfig(**cfg))
    return engine, net


def drain(engine, net, dst, until=None):
    """Run the engine dry and return the messages that reached ``dst``."""
    engine.run(until=until)
    inbox = net.inboxes[dst]
    out = list(inbox._items)
    inbox._items.clear()
    return out


class TestDelivery:
    def test_message_arrives_after_latency(self):
        engine, net = make_net(jitter=0.0)
        net.send(0, 1, "hello")
        assert drain(engine, net, 1) == ["hello"]
        assert engine.now == us(50)

    def test_extra_bytes_serialize_through_bandwidth(self):
        engine, net = make_net(jitter=0.0, bandwidth_bytes_per_sec=1_000_000)
        net.send(0, 1, "big", nbytes=1000)  # 1 ms at 1 MB/s
        drain(engine, net, 1)
        assert engine.now == ms(1) + us(50)

    def test_back_to_back_sends_queue_on_the_link(self):
        engine, net = make_net(jitter=0.0, bandwidth_bytes_per_sec=1_000_000)
        net.send(0, 1, "a", nbytes=1000)
        net.send(0, 1, "b", nbytes=1000)  # departs after a's serialization
        assert drain(engine, net, 1) == ["a", "b"]
        assert engine.now == ms(2) + us(50)

    def test_jitter_can_reorder(self):
        # With jittered latencies two messages on the same link keep their
        # order only by luck; across many sends both orders must occur.
        engine, net = make_net(jitter=0.5)
        for _ in range(40):
            net.send(0, 1, "first")
            net.send(0, 1, "second")
        got = drain(engine, net, 1)
        assert len(got) == 80
        firsts = [i for i, m in enumerate(got) if m == "first"]
        assert any(i % 2 != 0 for i in firsts), "no reordering in 40 pairs"

    def test_down_destination_drops(self):
        engine, net = make_net()
        net.set_down(1)
        net.send(0, 1, "lost")
        assert drain(engine, net, 1) == []
        net.set_up(1)
        net.send(0, 1, "found")
        assert drain(engine, net, 1) == ["found"]

    def test_crash_while_in_flight_drops_at_arrival(self):
        engine, net = make_net(jitter=0.0)
        net.send(0, 1, "in-flight")
        net.set_down(1)  # goes down before the message lands
        assert drain(engine, net, 1) == []
        assert net.stats.get("net.dropped_down") == 1


class TestLossAndDup:
    def test_loss_probability_drops_some(self):
        engine, net = make_net(loss_p=0.5)
        for i in range(100):
            net.send(0, 1, i)
        got = drain(engine, net, 1)
        assert 20 < len(got) < 80
        assert net.stats.get("net.dropped_loss") == 100 - len(got)

    def test_duplication_delivers_twice(self):
        engine, net = make_net(dup_p=0.5)
        for i in range(100):
            net.send(0, 1, i)
        got = drain(engine, net, 1)
        assert len(got) > 100
        assert net.stats.get("net.duplicated") == len(got) - 100


class TestPartitions:
    def test_partition_blocks_cross_group_only(self):
        engine, net = make_net(n=4)
        net.partition([0, 1])
        net.send(0, 2, "cross")  # blocked
        net.send(0, 1, "inside")  # same side
        net.send(2, 3, "other-side")  # same side
        assert drain(engine, net, 2) == []
        assert drain(engine, net, 1) == ["inside"]
        assert drain(engine, net, 3) == ["other-side"]

    def test_heal_restores_flow(self):
        engine, net = make_net()
        net.partition([0])
        net.send(0, 1, "blocked")
        net.heal()
        net.send(0, 1, "after")
        assert drain(engine, net, 1) == ["after"]

    def test_scheduled_window_opens_and_closes(self):
        engine, net = make_net()
        net.install_schedule(
            [FaultSpec(PARTITION, at_time=ms(1), until_time=ms(2), nodes=(0,))]
        )
        net.send(0, 1, "before")

        def later():
            yield ms(1)  # inside the window
            net.send(0, 1, "inside")
            yield ms(1)  # past until_time
            net.send(0, 1, "after")

        engine.process(later(), name="later")
        got = drain(engine, net, 1)
        assert got == ["before", "after"]

    def test_heal_spec_closes_open_window(self):
        engine, net = make_net()
        net.install_schedule(
            [
                FaultSpec(PARTITION, at_time=ms(1), nodes=(0,)),
                FaultSpec(HEAL, at_time=ms(3)),
            ]
        )
        assert net.partitioned(0, 1, now=ms(2))
        assert not net.partitioned(0, 1, now=ms(3))


class TestFaultWindows:
    def test_net_delay_window_slows_messages(self):
        engine, net = make_net(jitter=0.0)
        net.install_schedule(
            [FaultSpec(NET_DELAY, at_time=0, until_time=ms(1), extra_ns=ms(1))]
        )
        net.send(0, 1, "slow")
        drain(engine, net, 1)
        assert engine.now == ms(1) + us(50)

    def test_net_drop_window_drops_probabilistically(self):
        engine, net = make_net()
        net.install_schedule(
            [FaultSpec(NET_DROP, at_time=0, until_time=ms(10), drop_p=0.5)]
        )
        for i in range(100):
            net.send(0, 1, i)
        got = drain(engine, net, 1)
        assert 20 < len(got) < 80


class TestDeterminism:
    def run_once(self, seed):
        engine, net = make_net(seed=seed, jitter=0.3, loss_p=0.1, dup_p=0.1)
        for i in range(50):
            net.send(0, 1, ("m", i))
            net.send(2, 1, ("n", i))
        return drain(engine, net, 1), engine.now

    def test_same_seed_same_trajectory(self):
        assert self.run_once(3) == self.run_once(3)

    def test_different_seeds_diverge(self):
        assert self.run_once(3) != self.run_once(4)

    def test_link_streams_independent_of_creation_order(self):
        # Touching links in a different order first must not perturb the
        # draws either link makes: substreams are named, not sequential.
        engine_a, net_a = make_net(jitter=0.3)
        net_a.link(2, 1)  # create 2->1 first
        net_a.send(0, 1, "x")
        t_a = drain(engine_a, net_a, 1) and engine_a.now

        engine_b, net_b = make_net(jitter=0.3)
        net_b.send(0, 1, "x")  # 0->1 created first here
        t_b = drain(engine_b, net_b, 1) and engine_b.now
        assert t_a == t_b


class TestValidation:
    def test_bad_config_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            NetConfig(loss_p=1.5)
        with pytest.raises(SimulationError):
            NetConfig(bandwidth_bytes_per_sec=0)
        with pytest.raises(SimulationError):
            Network(Engine(), 0, RandomStream(1))
