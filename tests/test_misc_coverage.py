"""Small tests covering remaining public API corners."""

import pytest

from repro.sim.engine import Engine
from repro.sim.resources import Semaphore
from repro.sim.rng import RandomStream


def test_rng_distribution_helpers_deterministic():
    a, b = RandomStream(3, "d"), RandomStream(3, "d")
    assert a.uniform(0, 10) == b.uniform(0, 10)
    assert a.expovariate(2.0) == b.expovariate(2.0)
    assert a.lognormal(0.0, 0.5) == b.lognormal(0.0, 0.5)
    assert a.gauss(5.0, 1.0) == b.gauss(5.0, 1.0)


def test_rng_distribution_helpers_sane_ranges():
    rng = RandomStream(4, "ranges")
    for _ in range(100):
        assert 0 <= rng.uniform(0, 10) <= 10
        assert rng.expovariate(1.0) >= 0
        assert rng.lognormal(0.0, 0.3) > 0


def test_semaphore_usage_accessors(engine):
    sem = Semaphore(engine, 3)
    assert sem.available == 3 and sem.in_use == 0
    assert sem.try_acquire()
    assert sem.available == 2 and sem.in_use == 1
    sem.release()
    assert sem.in_use == 0


def test_memtable_is_empty_and_estimate():
    from repro.lsm.memtable import MemTable

    mt = MemTable(rep="hash")
    assert mt.is_empty()
    assert mt.live_entry_estimate() == 0
    mt.add(b"k", (1, 1, b"v"))
    assert not mt.is_empty()
    assert mt.live_entry_estimate() == 1


def test_compaction_metadata_accessors(engine):
    from repro.lsm.compaction import Compaction
    from repro.lsm.format import KIND_PUT
    from repro.lsm.sst import SSTBuilder
    from repro.lsm.version import FileMetadata
    from tests.conftest import make_fs

    fs = make_fs(engine)

    def meta(number, start):
        b = SSTBuilder(number, 1024, 0)
        for i in range(start, start + 10):
            b.add(b"%06d" % i, (i + 1, KIND_PUT, b"v" * 20))
        sst = b.finish()
        f = fs.install_synced(f"sst/{number}.sst", sst.file_bytes)
        f.payload = sst
        return FileMetadata(number, sst, f, 0)

    upper, lower = meta(1, 0), meta(2, 100)
    c = Compaction(0, 1, [upper], [lower])
    assert c.input_bytes == upper.file_bytes + lower.file_bytes
    smallest, largest = c.key_range()
    assert smallest == b"%06d" % 0
    assert largest == b"%06d" % 109
    assert "Compaction L0->L1" in repr(c)


def test_version_edit_encoded_bytes_scales():
    from repro.lsm.version import VersionEdit

    small = VersionEdit().delete_file(1, 7)
    big = VersionEdit()
    for i in range(10):
        big.delete_file(1, i)
    assert big.encoded_bytes() > small.encoded_bytes() > 0
