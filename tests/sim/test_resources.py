"""Tests for simulated synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import Condition, Lock, Semaphore, Store


def test_lock_fast_path_no_suspension(engine):
    lock = Lock(engine)

    def proc():
        yield lock.acquire()
        t = engine.now
        lock.release()
        return t

    p = engine.process(proc())
    engine.run()
    assert p.value == 0
    assert not lock.locked


def test_lock_mutual_exclusion(engine):
    lock = Lock(engine)
    active = []
    overlaps = []

    def proc(name):
        yield lock.acquire()
        active.append(name)
        if len(active) > 1:
            overlaps.append(tuple(active))
        yield 100
        active.remove(name)
        lock.release()

    for name in "abc":
        engine.process(proc(name))
    engine.run()
    assert overlaps == []
    assert engine.now == 300  # strictly serialized


def test_lock_fifo_fairness(engine):
    lock = Lock(engine)
    order = []

    def holder():
        yield lock.acquire()
        yield 100
        lock.release()

    def waiter(name, arrive):
        yield arrive
        yield lock.acquire()
        order.append(name)
        lock.release()

    engine.process(holder())
    engine.process(waiter("late", 20))
    engine.process(waiter("later", 30))
    engine.process(waiter("latest", 40))
    engine.run()
    assert order == ["late", "later", "latest"]


def test_semaphore_capacity(engine):
    sem = Semaphore(engine, 2)
    concurrency = []
    active = [0]

    def proc():
        yield sem.acquire()
        active[0] += 1
        concurrency.append(active[0])
        yield 100
        active[0] -= 1
        sem.release()

    for _ in range(5):
        engine.process(proc())
    engine.run()
    assert max(concurrency) == 2
    assert engine.now == 300  # ceil(5/2) * 100


def test_semaphore_try_acquire(engine):
    sem = Semaphore(engine, 1)
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_semaphore_over_release_raises(engine):
    sem = Semaphore(engine, 1)
    with pytest.raises(SimulationError):
        sem.release()


def test_semaphore_invalid_capacity(engine):
    with pytest.raises(SimulationError):
        Semaphore(engine, 0)


def test_semaphore_queue_len(engine):
    sem = Semaphore(engine, 1)

    def holder():
        yield sem.acquire()
        yield 100
        sem.release()

    def waiter():
        yield 10
        yield sem.acquire()
        sem.release()

    engine.process(holder())
    engine.process(waiter())
    engine.run(until=50)
    assert sem.queue_len == 1
    engine.run()
    assert sem.queue_len == 0


def test_condition_wait_notify(engine):
    cond = Condition(engine)
    log = []

    def consumer():
        yield cond.lock.acquire()
        yield from cond.wait()
        log.append(("woke", engine.now))
        cond.lock.release()

    def producer():
        yield 500
        yield cond.lock.acquire()
        cond.notify()
        cond.lock.release()

    engine.process(consumer())
    engine.process(producer())
    engine.run()
    assert log == [("woke", 500)]


def test_condition_notify_all(engine):
    cond = Condition(engine)
    woke = []

    def consumer(name):
        yield cond.lock.acquire()
        yield from cond.wait()
        woke.append(name)
        cond.lock.release()

    def producer():
        yield 100
        yield cond.lock.acquire()
        cond.notify_all()
        cond.lock.release()

    for name in "ab":
        engine.process(consumer(name))
    engine.process(producer())
    engine.run()
    assert sorted(woke) == ["a", "b"]


def test_condition_wait_without_lock_raises(engine):
    cond = Condition(engine)

    def bad():
        yield from cond.wait()

    engine.process(bad())
    with pytest.raises(SimulationError):
        engine.run()


def test_store_put_then_get(engine):
    store = Store(engine)
    store.put("x")

    def getter():
        item = yield store.get()
        return item

    p = engine.process(getter())
    engine.run()
    assert p.value == "x"


def test_store_get_blocks_until_put(engine):
    store = Store(engine)

    def getter():
        item = yield store.get()
        return (engine.now, item)

    def putter():
        yield 300
        store.put("late")

    p = engine.process(getter())
    engine.process(putter())
    engine.run()
    assert p.value == (300, "late")


def test_store_fifo_items_and_getters(engine):
    store = Store(engine)
    got = []

    def getter(name):
        item = yield store.get()
        got.append((name, item))

    engine.process(getter("g1"))
    engine.process(getter("g2"))

    def putter():
        yield 10
        store.put("first")
        store.put("second")

    engine.process(putter())
    engine.run()
    assert got == [("g1", "first"), ("g2", "second")]


def test_store_try_get(engine):
    store = Store(engine)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put(7)
    ok, item = store.try_get()
    assert ok and item == 7
    assert len(store) == 0
