"""Tests for named deterministic random streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RandomStream


def test_same_seed_same_stream():
    a = RandomStream(7, "x")
    b = RandomStream(7, "x")
    assert [a.randint(0, 1000) for _ in range(20)] == [
        b.randint(0, 1000) for _ in range(20)
    ]


def test_different_names_decorrelate():
    a = RandomStream(7, "x")
    b = RandomStream(7, "y")
    assert [a.randint(0, 10**9) for _ in range(10)] != [
        b.randint(0, 10**9) for _ in range(10)
    ]


def test_fork_is_deterministic():
    a = RandomStream(7).fork("child")
    b = RandomStream(7).fork("child")
    assert a.random() == b.random()


def test_fork_name_nesting():
    root = RandomStream(1, "root")
    assert root.fork("a").name == "root/a"
    assert root.fork("a").fork("b").name == "root/a/b"


def test_fork_does_not_perturb_parent():
    a = RandomStream(7, "p")
    b = RandomStream(7, "p")
    a.fork("child")  # forking must not consume parent state
    assert a.random() == b.random()


def test_chance_extremes():
    rng = RandomStream(1)
    assert not rng.chance(0.0)
    assert rng.chance(1.0)
    assert not rng.chance(-0.5)
    assert rng.chance(1.5)


@given(p=st.floats(min_value=0.05, max_value=0.95))
def test_chance_frequency(p):
    rng = RandomStream(123, f"freq-{p}")
    hits = sum(rng.chance(p) for _ in range(2000))
    assert abs(hits / 2000 - p) < 0.08


@given(lo=st.integers(0, 100), span=st.integers(0, 100))
def test_randint_bounds(lo, span):
    rng = RandomStream(5, "bounds")
    for _ in range(50):
        v = rng.randint(lo, lo + span)
        assert lo <= v <= lo + span


def test_jittered_zero_jitter_identity():
    rng = RandomStream(1)
    assert rng.jittered(100.0, 0.0) == 100.0


@given(jitter=st.floats(min_value=0.01, max_value=0.5))
def test_jittered_bounds(jitter):
    rng = RandomStream(9, "jit")
    for _ in range(100):
        v = rng.jittered(1000.0, jitter)
        assert 1000.0 * (1 - jitter) <= v <= 1000.0 * (1 + jitter)


def test_state_roundtrip():
    rng = RandomStream(3)
    state = rng.getstate()
    first = rng.random()
    rng.setstate(state)
    assert rng.random() == first


def test_shuffle_and_choice_deterministic():
    a = RandomStream(4, "s")
    b = RandomStream(4, "s")
    items_a = list(range(10))
    items_b = list(range(10))
    a.shuffle(items_a)
    b.shuffle(items_b)
    assert items_a == items_b
    assert a.choice("abcdef") == b.choice("abcdef")
