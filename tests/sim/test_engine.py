"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_clock_starts_at_zero(engine):
    assert engine.now == 0


def test_timeout_advances_clock(engine):
    log = []

    def proc():
        yield 100
        log.append(engine.now)
        yield 250
        log.append(engine.now)

    engine.process(proc())
    engine.run()
    assert log == [100, 350]


def test_zero_sleep_does_not_advance_clock(engine):
    def proc():
        yield 0
        return engine.now

    p = engine.process(proc())
    engine.run()
    assert p.value == 0


def test_negative_sleep_raises(engine):
    def proc():
        yield -5

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_run_until_stops_early(engine):
    hits = []

    def proc():
        for _ in range(10):
            yield 100
            hits.append(engine.now)

    engine.process(proc())
    engine.run(until=450)
    assert hits == [100, 200, 300, 400]
    assert engine.now == 450


def test_run_until_idle_advances_to_deadline(engine):
    engine.run(until=5_000)
    assert engine.now == 5_000


def test_process_return_value(engine):
    def proc():
        yield 1
        return "done"

    p = engine.process(proc())
    engine.run()
    assert p.done
    assert p.value == "done"


def test_join_process(engine):
    def child():
        yield 500
        return 42

    def parent():
        value = yield engine.process(child())
        return (engine.now, value)

    p = engine.process(parent())
    engine.run()
    assert p.value == (500, 42)


def test_join_already_finished_process(engine):
    def child():
        yield 10
        return "early"

    def parent(c):
        yield 100  # child finishes first
        value = yield c
        return value

    c = engine.process(child())
    p = engine.process(parent(c))
    engine.run()
    assert p.value == "early"


def test_event_succeed_wakes_waiters_in_fifo_order(engine):
    ev = engine.event()
    order = []

    def waiter(name):
        yield ev
        order.append(name)

    def trigger():
        yield 50
        ev.succeed("go")

    engine.process(waiter("a"))
    engine.process(waiter("b"))
    engine.process(trigger())
    engine.run()
    assert order == ["a", "b"]


def test_event_value_passes_to_waiter(engine):
    ev = engine.event()

    def waiter():
        value = yield ev
        return value

    def trigger():
        yield 5
        ev.succeed(123)

    p = engine.process(waiter())
    engine.process(trigger())
    engine.run()
    assert p.value == 123


def test_event_failure_raises_in_waiter(engine):
    ev = engine.event()

    def waiter():
        try:
            yield ev
        except ValueError as err:
            return f"caught {err}"

    def trigger():
        yield 5
        ev.fail(ValueError("boom"))

    p = engine.process(waiter())
    engine.process(trigger())
    engine.run()
    assert p.value == "caught boom"


def test_event_cannot_trigger_twice(engine):
    ev = engine.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_value_before_trigger_raises(engine):
    ev = engine.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_unhandled_crash_surfaces_from_run(engine):
    def proc():
        yield 10
        raise RuntimeError("unhandled")

    engine.process(proc())
    with pytest.raises(SimulationError, match="crashed"):
        engine.run()


def test_crash_propagates_to_joiner_not_run(engine):
    def child():
        yield 10
        raise RuntimeError("child failed")

    def parent():
        try:
            yield engine.process(child())
        except RuntimeError as err:
            return str(err)

    p = engine.process(parent())
    engine.run()
    assert p.value == "child failed"


def test_all_of_collects_values(engine):
    def worker(delay, value):
        yield delay
        return value

    def parent():
        procs = [engine.process(worker(d, v)) for d, v in ((30, "a"), (10, "b"))]
        values = yield engine.all_of(procs)
        return (engine.now, values)

    p = engine.process(parent())
    engine.run()
    assert p.value == (30, ["a", "b"])


def test_all_of_empty_fires_immediately(engine):
    def parent():
        values = yield engine.all_of([])
        return values

    p = engine.process(parent())
    engine.run()
    assert p.value == []


def test_any_of_fires_on_first(engine):
    def worker(delay, value):
        yield delay
        return value

    def parent():
        slow = engine.process(worker(100, "slow"))
        fast = engine.process(worker(10, "fast"))
        ev, value = yield engine.any_of([slow, fast])
        return (engine.now, value, ev is fast)

    p = engine.process(parent())
    engine.run()
    assert p.value == (10, "fast", True)


def test_timeout_event_composable_with_any_of(engine):
    def parent():
        never = engine.event()
        ev, _ = yield engine.any_of([never, engine.timeout(500, "deadline")])
        return engine.now

    p = engine.process(parent())
    engine.run()
    assert p.value == 500


def test_same_time_events_fire_in_schedule_order(engine):
    order = []

    def proc(name):
        yield 100
        order.append(name)

    for name in ("first", "second", "third"):
        engine.process(proc(name), name=name)
    engine.run()
    assert order == ["first", "second", "third"]


def test_peek_returns_next_timestamp(engine):
    def proc():
        yield 77

    engine.process(proc())
    assert engine.peek() == 0  # initial process start is scheduled at t=0
    engine.run(until=0)
    assert engine.peek() == 77


def test_yield_unsupported_value_crashes_process(engine):
    def proc():
        yield "not an event"

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_run_not_reentrant(engine):
    def proc():
        engine.run()
        yield 1

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30))
def test_clock_is_monotonic_for_any_delays(delays):
    engine = Engine()
    stamps = []

    def proc():
        for d in delays:
            yield d
            stamps.append(engine.now)

    engine.process(proc())
    engine.run()
    assert stamps == sorted(stamps)
    assert stamps[-1] == sum(delays)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_deterministic_replay(seed):
    """Two engines running identical stochastic programs agree exactly."""
    from repro.sim.rng import RandomStream

    def trace(run_seed):
        engine = Engine()
        rng = RandomStream(run_seed, "replay")
        log = []

        def proc():
            for _ in range(20):
                yield rng.randint(1, 1000)
                log.append(engine.now)

        engine.process(proc())
        engine.run()
        return log

    assert trace(seed) == trace(seed)
