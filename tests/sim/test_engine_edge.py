"""Edge-case tests for the DES kernel's composite events and callbacks."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, Timeout


def test_all_of_fails_with_first_child_failure(engine):
    def bad():
        yield 10
        raise ValueError("first")

    def good():
        yield 50
        return "ok"

    def parent():
        try:
            yield engine.all_of([engine.process(bad()), engine.process(good())])
        except ValueError as err:
            return (engine.now, str(err))

    p = engine.process(parent())
    engine.run()
    assert p.value == (10, "first")


def test_all_of_with_pretriggered_children(engine):
    ev1 = engine.event().succeed("a")
    ev2 = engine.event().succeed("b")

    def parent():
        values = yield engine.all_of([ev1, ev2])
        return values

    p = engine.process(parent())
    engine.run()
    assert p.value == ["a", "b"]


def test_all_of_with_prefailed_child(engine):
    failed = engine.event()
    failed.fail(RuntimeError("pre"))

    def parent():
        try:
            yield engine.all_of([failed, engine.timeout(100)])
        except RuntimeError as err:
            return str(err)

    p = engine.process(parent())
    engine.run()
    assert p.value == "pre"


def test_any_of_with_pretriggered_child(engine):
    ready = engine.event().succeed("instant")

    def parent():
        ev, value = yield engine.any_of([ready, engine.timeout(1000)])
        return (engine.now, value)

    p = engine.process(parent())
    engine.run()
    assert p.value == (0, "instant")


def test_any_of_empty_rejected(engine):
    with pytest.raises(SimulationError):
        engine.any_of([])


def test_any_of_failure_propagates(engine):
    def bad():
        yield 5
        raise KeyError("boom")

    def parent():
        try:
            yield engine.any_of([engine.process(bad()), engine.timeout(100)])
        except KeyError:
            return "caught"

    p = engine.process(parent())
    engine.run()
    assert p.value == "caught"


def test_timeout_with_value(engine):
    def parent():
        value = yield Timeout(engine, 42, value="payload")
        return (engine.now, value)

    p = engine.process(parent())
    engine.run()
    assert p.value == (42, "payload")


def test_negative_timeout_rejected(engine):
    with pytest.raises(SimulationError):
        engine.timeout(-1)


def test_event_callbacks_fire_once_in_order(engine):
    calls = []
    ev = engine.event()
    ev.callbacks.append(lambda e: calls.append("a"))
    ev.callbacks.append(lambda e: calls.append("b"))
    ev.succeed()
    assert calls == ["a", "b"]
    assert ev.callbacks == []  # consumed


def test_event_ok_and_exception_accessors(engine):
    ev = engine.event()
    assert not ev.ok
    ev.succeed(1)
    assert ev.ok and ev.exception is None

    bad = engine.event()
    bad.fail(ValueError("x"))
    assert bad.triggered and not bad.ok
    assert isinstance(bad.exception, ValueError)


def test_clear_pending_cancels_everything(engine):
    resumed = []

    def sleeper():
        yield 100
        resumed.append(True)

    engine.process(sleeper())
    assert engine.clear_pending() == 1
    engine.run()
    assert resumed == []
    assert engine.peek() is None


def test_clear_pending_during_run_rejected(engine):
    def proc():
        engine.clear_pending()
        yield 1

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_process_requires_generator(engine):
    with pytest.raises(SimulationError):
        engine.process([1, 2, 3])


def test_join_failed_process_after_completion(engine):
    """A pre-registered joiner sees the failure even if it collects late."""
    def bad():
        yield 1
        raise RuntimeError("late join")

    crashed = engine.process(bad())
    # Registering interest marks the crash as handled...
    crashed.callbacks.append(lambda _ev: None)

    def parent():
        yield 100  # ...so collecting the result later still works.
        try:
            yield crashed
        except RuntimeError:
            return "seen"

    p = engine.process(parent())
    engine.run()
    assert p.value == "seen"


def test_unjoined_crash_is_loud(engine):
    """Without any joiner, a crash surfaces from run() (never silent)."""
    def bad():
        yield 1
        raise RuntimeError("nobody listening")

    engine.process(bad())
    with pytest.raises(SimulationError, match="crashed"):
        engine.run()
