"""Tests for time/size unit helpers."""

from repro.sim.units import (
    GB,
    KB,
    MB,
    MS,
    SEC,
    US,
    fmt_bytes,
    fmt_time,
    gb,
    kb,
    mb,
    ms,
    seconds,
    to_ms,
    to_seconds,
    to_us,
    us,
)


def test_time_constants_consistent():
    assert US == 1_000
    assert MS == 1_000 * US
    assert SEC == 1_000 * MS


def test_conversions_roundtrip():
    assert us(15) == 15_000
    assert ms(1.5) == 1_500_000
    assert seconds(2) == 2 * SEC
    assert to_us(us(8.5)) == 8.5
    assert to_ms(ms(3)) == 3.0
    assert to_seconds(seconds(0.25)) == 0.25


def test_fractional_us_rounds():
    assert us(0.3) == 300
    assert us(8.5) == 8500


def test_size_constants():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB
    assert kb(2) == 2048
    assert mb(0.5) == 512 * KB
    assert gb(1) == GB


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(64 * MB) == "64.0 MB"
    assert fmt_bytes(3 * GB) == "3.0 GB"


def test_fmt_time():
    assert fmt_time(500) == "500 ns"
    assert fmt_time(us(8.5)) == "8.5 us"
    assert fmt_time(ms(2.5)) == "2.50 ms"
    assert fmt_time(seconds(1.25)) == "1.25 s"
