"""Tests for latency histograms, time series, and gauges."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.stats import (
    LatencyHistogram,
    StatsSet,
    TimeSeries,
    TimeWeightedGauge,
)
from repro.sim.units import SEC


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_single_value(self):
        hist = LatencyHistogram()
        hist.record(1000)
        assert hist.count == 1
        assert hist.min == hist.max == 1000
        assert hist.percentile(50) == pytest.approx(1000, rel=0.05)

    def test_small_values_exact(self):
        hist = LatencyHistogram()
        for v in range(32):
            hist.record(v)
        assert hist.min == 0
        assert hist.max == 31
        assert hist.mean == pytest.approx(15.5)

    def test_negative_raises(self):
        hist = LatencyHistogram()
        with pytest.raises(SimulationError):
            hist.record(-1)

    def test_percentile_bounds_check(self):
        hist = LatencyHistogram()
        hist.record(5)
        with pytest.raises(SimulationError):
            hist.percentile(101)
        with pytest.raises(SimulationError):
            hist.percentile(-1)

    def test_weighted_record(self):
        hist = LatencyHistogram()
        hist.record(100, n=10)
        assert hist.count == 10
        assert hist.total == 1000

    @given(
        samples=st.lists(
            st.integers(min_value=0, max_value=10_000_000), min_size=10, max_size=500
        )
    )
    def test_percentiles_within_relative_error(self, samples):
        """Bucketed percentiles stay within ~4% of exact ones."""
        hist = LatencyHistogram()
        for s in samples:
            hist.record(s)
        for p in (50, 90, 99):
            exact = float(np.percentile(samples, p, method="inverted_cdf"))
            approx = hist.percentile(p)
            assert approx <= hist.max
            assert approx >= hist.min
            if exact > 0:
                assert approx == pytest.approx(exact, rel=0.05, abs=2)

    @given(
        a=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=100),
        b=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=100),
    )
    def test_merge_equals_union(self, a, b):
        ha, hb, hu = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for s in a:
            ha.record(s)
            hu.record(s)
        for s in b:
            hb.record(s)
            hu.record(s)
        ha.merge(hb)
        assert ha.count == hu.count
        assert ha.total == hu.total
        assert ha.min == hu.min
        assert ha.max == hu.max
        assert ha.percentile(90) == pytest.approx(hu.percentile(90))

    def test_summary_keys(self):
        hist = LatencyHistogram()
        hist.record(10)
        summary = hist.summary()
        assert set(summary) == {"count", "mean", "p50", "p90", "p99", "max"}

    def test_mean_exact(self):
        hist = LatencyHistogram()
        for v in (10, 20, 30):
            hist.record(v)
        assert hist.mean == pytest.approx(20.0)

    def test_reset_in_place(self):
        hist = LatencyHistogram("lat")
        hist.record(100, n=5)
        hist.reset()
        assert hist.count == 0
        assert hist.total == 0
        assert hist.min is None and hist.max is None
        assert hist.percentile(99) == 0.0
        hist.record(7)
        assert hist.summary()["p50"] == pytest.approx(7.0)


class TestPercentileAccuracy:
    """p50/p90/p99 track exact percentiles within ~3% from 1 ns to 10 s.

    The histogram's 32 sub-buckets per octave bound the relative bucket
    width at 1/32 ~ 3.1%, so the interpolated percentile can be at most one
    bucket width from the exact order statistic at any magnitude.
    """

    SCALES = [1, 10, 1_000, 100_000, 10_000_000, 10 * SEC]

    @pytest.mark.parametrize("dist", ["uniform", "lognormal"])
    @pytest.mark.parametrize("scale", SCALES)
    def test_within_relative_error(self, scale, dist):
        rng = np.random.default_rng(scale % 2**31 + (dist == "lognormal"))
        if dist == "uniform":
            samples = rng.integers(0, scale + 1, size=4000)
        else:
            samples = np.minimum(
                rng.lognormal(mean=np.log(scale), sigma=1.0, size=4000), 10 * SEC
            ).astype(np.int64)
        hist = LatencyHistogram()
        for s in samples.tolist():
            hist.record(int(s))
        for p in (50, 90, 99):
            exact = float(np.percentile(samples, p, method="inverted_cdf"))
            approx = hist.percentile(p)
            assert abs(approx - exact) <= max(0.035 * exact, 1.0), (p, scale, dist)


def _hist_state(hist):
    return (
        dict(hist._buckets),
        hist.count,
        hist.total,
        hist.min,
        hist.max,
    )


class TestRecordMany:
    """Bulk recording is bit-identical to the scalar loop, in any order.

    record_many has a vectorized numpy path above the bulk threshold and a
    scalar fallback below it (and whenever numpy is unavailable); both must
    leave exactly the state a plain ``record`` loop would, even when
    percentile queries — which build a sorted-bucket cache that bulk
    inserts must invalidate — interleave with the batches.
    """

    @given(
        program=st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=10_000_000),
                st.lists(
                    st.integers(min_value=0, max_value=10_000_000),
                    min_size=0,
                    max_size=100,
                ),
                st.sampled_from([50.0, 90.0, 99.0]),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_interleaved_record_percentile_record_many(self, program):
        hist = LatencyHistogram()
        ref = LatencyHistogram()
        for step in program:
            if isinstance(step, float):  # percentile query mid-stream
                assert hist.percentile(step) == ref.percentile(step)
            elif isinstance(step, list):  # bulk batch
                hist.record_many(step)
                for v in step:
                    ref.record(v)
            else:  # scalar sample
                hist.record(step)
                ref.record(step)
        assert _hist_state(hist) == _hist_state(ref)
        for p in (0, 50, 90, 99, 100):
            assert hist.percentile(p) == ref.percentile(p)

    def test_bulk_batch_invalidates_percentile_cache(self):
        """A cached percentile must not survive a bulk insert that opens
        new buckets (the numpy path invalidates at most once per batch)."""
        hist = LatencyHistogram()
        hist.record(10)
        assert hist.percentile(50) == pytest.approx(10.0)
        hist.record_many([1_000_000] * 64)
        assert hist.percentile(99) == pytest.approx(1_000_000, rel=0.05)

    def test_huge_samples_use_scalar_path(self):
        """Samples at/above 2**53 (float64 exactness limit) must still land
        in the same buckets as the scalar path."""
        huge = [2**53, 2**53 + 1, 2**60] * 16
        hist, ref = LatencyHistogram(), LatencyHistogram()
        hist.record_many(huge)
        for v in huge:
            ref.record(v)
        assert _hist_state(hist) == _hist_state(ref)

    def test_negative_in_batch_raises(self):
        hist = LatencyHistogram()
        with pytest.raises(SimulationError):
            hist.record_many([1, 2, -3] + [4] * 64)

    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=10 * SEC), min_size=0, max_size=100
        ),
        weighted=st.booleans(),
    )
    def test_timeseries_record_many(self, times, weighted):
        ts = TimeSeries(bucket_ns=SEC // 4)
        ref = TimeSeries(bucket_ns=SEC // 4)
        counts = [t % 5 + 1 for t in times] if weighted else None
        ts.record_many(times, counts)
        for i, t in enumerate(times):
            ref.record(t, counts[i] if counts else 1)
        assert dict(ts._buckets) == dict(ref._buckets)
        assert ts.count == ref.count

    def test_no_numpy_fallback_identical(self, monkeypatch):
        """REPRO_NO_NUMPY's code path (module-level ``_np = None``) must
        produce byte-identical state to the vectorized path."""
        import repro.sim.stats as stats_mod

        samples = list(range(0, 5000, 7)) * 2
        vec = LatencyHistogram()
        vec.record_many(samples)
        monkeypatch.setattr(stats_mod, "_np", None)
        scalar = LatencyHistogram()
        scalar.record_many(samples)
        assert _hist_state(vec) == _hist_state(scalar)

        times = [i * 1000 for i in range(200)]
        counts = [i % 3 + 1 for i in range(200)]
        scalar_ts = TimeSeries(bucket_ns=SEC // 10)
        scalar_ts.record_many(times, counts)
        monkeypatch.undo()
        vec_ts = TimeSeries(bucket_ns=SEC // 10)
        vec_ts.record_many(times, counts)
        assert dict(vec_ts._buckets) == dict(scalar_ts._buckets)
        assert vec_ts.count == scalar_ts.count


class TestTimeSeries:
    def test_bucket_rates(self):
        ts = TimeSeries(bucket_ns=SEC)
        for i in range(5):
            ts.record(0, n=1)
        for i in range(3):
            ts.record(SEC + 1, n=1)
        series = ts.series(0, 2 * SEC)
        assert series == [(0.0, 5.0), (1.0, 3.0)]

    def test_zero_buckets_included(self):
        ts = TimeSeries(bucket_ns=SEC)
        ts.record(0)
        ts.record(3 * SEC)
        series = ts.series(0, 4 * SEC)
        assert [rate for _, rate in series] == [1.0, 0.0, 0.0, 1.0]

    def test_sub_second_buckets_scale_to_per_second(self):
        ts = TimeSeries(bucket_ns=SEC // 10)
        ts.record(0, n=5)
        series = ts.series(0, SEC // 10)
        assert series[0][1] == 50.0  # 5 events in 100 ms = 50/s

    def test_rate_between(self):
        ts = TimeSeries(bucket_ns=SEC)
        ts.record(0, n=10)
        ts.record(SEC, n=20)
        assert ts.rate_between(0, 2 * SEC) == pytest.approx(15.0)
        assert ts.rate_between(SEC, SEC) == 0.0

    def test_invalid_bucket(self):
        with pytest.raises(SimulationError):
            TimeSeries(bucket_ns=0)

    def test_empty_series(self):
        ts = TimeSeries()
        assert ts.series() == []

    def test_trailing_partial_bucket_included(self):
        """Regression: events after the last full bucket used to vanish
        when ``end`` was not bucket-aligned."""
        ts = TimeSeries(bucket_ns=SEC)
        ts.record(0)
        ts.record(int(2.5 * SEC), n=4)
        series = ts.series(0, int(2.5 * SEC))
        assert series == [(0.0, 1.0), (1.0, 0.0), (2.0, 4.0)]

    def test_aligned_end_stays_half_open(self):
        ts = TimeSeries(bucket_ns=SEC)
        ts.record(0, n=2)
        ts.record(2 * SEC, n=3)  # at the end boundary: excluded
        assert ts.series(0, 2 * SEC) == [(0.0, 2.0), (1.0, 0.0)]


class TestTimeWeightedGauge:
    def test_mean_of_step_function(self):
        g = TimeWeightedGauge()
        g.update(0, 10.0)
        g.update(100, 0.0)
        # 10 for [0,100), then 0 for [100,200)
        assert g.mean(200) == pytest.approx(5.0)

    def test_mean_with_no_updates(self):
        assert TimeWeightedGauge().mean(100) == 0.0

    def test_max_value_tracked(self):
        g = TimeWeightedGauge()
        g.update(0, 3.0)
        g.update(5, 8.0)
        g.update(10, 1.0)
        assert g.max_value == 8.0

    def test_past_timestamp_raises(self):
        g = TimeWeightedGauge()
        g.update(100, 1.0)
        with pytest.raises(SimulationError):
            g.update(50, 2.0)

    @given(
        steps=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=1000),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_mean_bounded_by_extremes(self, steps):
        g = TimeWeightedGauge()
        t = 0
        values = []
        for dt, v in steps:
            g.update(t, v)
            values.append(v)
            t += dt
        mean = g.mean(t)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestStatsSet:
    def test_counters(self):
        s = StatsSet()
        s.inc("x")
        s.inc("x", 4)
        assert s.get("x") == 5
        assert s.get("missing") == 0

    def test_histogram_registry(self):
        s = StatsSet()
        h = s.histogram("lat")
        h.record(10)
        assert s.histogram("lat").count == 1
        assert list(s.histogram_names()) == ["lat"]

    def test_reset(self):
        s = StatsSet()
        s.inc("a")
        s.histogram("h").record(1)
        s.reset()
        assert s.get("a") == 0
        assert s.tickers() == {}

    def test_reset_clears_histograms_in_place(self):
        """Regression: reset() used to orphan histogram references — a
        caller holding one kept recording into an object the set no longer
        reported."""
        s = StatsSet()
        h = s.histogram("h")
        h.record(5)
        s.reset()
        assert h.count == 0
        assert s.histogram("h") is h
        assert list(s.histogram_names()) == ["h"]
        h.record(7)
        assert s.histogram("h").count == 1
