"""Property tests pinning kernel semantics under hot-path optimization.

The engine's run loop is heavily optimized (now-queue for delay-zero
occurrences, inlined process stepping, zero-allocation sleeps).  These tests
check the *semantics* never drifted: randomized scenarios — integer sleeps
including zero, cross-process event fires, failures, spawns, joins and
same-timestamp ties — are executed both on :class:`repro.sim.engine.Engine`
and on a deliberately naive reference kernel that implements the documented
contract the slow way (every occurrence goes through one heap with a
monotonic sequence number).  The observable logs and final clocks must match
exactly.

Also here: cache-correctness properties for the measurement primitives the
optimization pass touched (:class:`LatencyHistogram`'s sorted-bucket cache,
:class:`TimeSeries.rate_between`'s windowed scan).
"""

import heapq
import random

import pytest

from repro.obs import Tracer
from repro.sim.engine import Engine
from repro.sim.stats import LatencyHistogram, TimeSeries

# ---------------------------------------------------------------------------
# Reference kernel: the documented contract, implemented naively.
# ---------------------------------------------------------------------------


class RefWaitable:
    """Event/process result holder for the reference kernel."""

    def __init__(self):
        self.triggered = False
        self.value = None
        self.exc = None
        self.waiters = []


class RefKernel:
    """Single-heap kernel: every occurrence gets a (when, seq) heap entry.

    Delay-zero scheduling, spawns and event wakeups all take the generic
    path; ties break on the monotonic sequence number.  This is the ordering
    the optimized engine must reproduce.
    """

    def __init__(self):
        self.now = 0
        self._heap = []
        self._seq = 0

    def schedule(self, delay, proc, value=None, exc=None):
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, proc, value, exc))

    def spawn(self, gen):
        proc = RefWaitable()
        proc.gen = gen
        self.schedule(0, proc)
        return proc

    def fire(self, waitable, value=None, exc=None):
        waitable.triggered = True
        waitable.value = value
        waitable.exc = exc
        for waiter in waitable.waiters:
            self.schedule(0, waiter, value, exc)
        waitable.waiters = []

    def run(self):
        while self._heap:
            when, _seq, proc, value, exc = heapq.heappop(self._heap)
            self.now = when
            self._step(proc, value, exc)
        return self.now

    def _step(self, proc, value, exc):
        gen = proc.gen
        while True:
            try:
                if exc is not None:
                    pending, exc = exc, None
                    yielded = gen.throw(pending)
                else:
                    yielded = gen.send(value)
            except StopIteration as stop:
                self.fire(proc, stop.value)
                return
            except RuntimeError as err:
                self.fire(proc, None, err)
                return
            if isinstance(yielded, int):
                if yielded == 0:
                    value = self.now  # synchronous continue, like the engine
                    continue
                self.schedule(yielded, proc)
                return
            # a RefWaitable: wait (or continue synchronously if triggered)
            if yielded.triggered:
                if yielded.exc is not None:
                    exc = yielded.exc
                    continue
                value = yielded.value
                continue
            yielded.waiters.append(proc)
            return


# ---------------------------------------------------------------------------
# Scenario scripts: one op language, two interpreters.
# ---------------------------------------------------------------------------
#
# A scenario is (n_events, [script, ...]) where each script is a list of ops:
#   ("sleep", d)         yield d (d may be 0)
#   ("mark", k)          log a marker
#   ("wait", i)          wait on event i, log the value or error
#   ("succeed", i, v)    fire event i successfully (each event fired once)
#   ("fail", i, m)       fire event i with RuntimeError(m)
#   ("spawn", script)    start a child running the sub-script
#   ("spawn_fail", m)    start a child that sleeps then raises; always
#                        followed by ("join",) so the failure is observed
#   ("join",)            join the most recent un-joined child, log result
#   ("ret", v)           return v from the script's process


def _engine_driver(engine, events, pid, script, log):
    children = []
    ret = None
    for cmd in script:
        op = cmd[0]
        if op == "sleep":
            yield cmd[1]
        elif op == "mark":
            log.append((engine.now, pid, "mark", cmd[1]))
        elif op == "wait":
            try:
                got = yield events[cmd[1]]
                log.append((engine.now, pid, "woke", cmd[1], got))
            except RuntimeError as err:
                log.append((engine.now, pid, "woke-err", cmd[1], str(err)))
        elif op == "succeed":
            events[cmd[1]].succeed(cmd[2])
            log.append((engine.now, pid, "fired", cmd[1]))
        elif op == "fail":
            events[cmd[1]].fail(RuntimeError(cmd[2]))
            log.append((engine.now, pid, "failed", cmd[1]))
        elif op == "spawn":
            cid = f"{pid}.{len(children)}"
            gen = _engine_driver(engine, events, cid, cmd[1], log)
            children.append(engine.process(gen, name=cid))
            log.append((engine.now, pid, "spawn", cid))
        elif op == "spawn_fail":
            cid = f"{pid}.{len(children)}"
            gen = _engine_driver(engine, events, cid, [("sleep", 1), ("raise", cmd[1])], log)
            children.append(engine.process(gen, name=cid))
            log.append((engine.now, pid, "spawn", cid))
        elif op == "join":
            if children:
                child = children.pop()
                try:
                    got = yield child
                    log.append((engine.now, pid, "joined", got))
                except RuntimeError as err:
                    log.append((engine.now, pid, "joined-err", str(err)))
        elif op == "raise":
            raise RuntimeError(cmd[1])
        elif op == "ret":
            ret = cmd[1]
    return ret


def _ref_driver(kernel, events, pid, script, log):
    children = []
    ret = None
    for cmd in script:
        op = cmd[0]
        if op == "sleep":
            yield cmd[1]
        elif op == "mark":
            log.append((kernel.now, pid, "mark", cmd[1]))
        elif op == "wait":
            try:
                got = yield events[cmd[1]]
                log.append((kernel.now, pid, "woke", cmd[1], got))
            except RuntimeError as err:
                log.append((kernel.now, pid, "woke-err", cmd[1], str(err)))
        elif op == "succeed":
            kernel.fire(events[cmd[1]], cmd[2])
            log.append((kernel.now, pid, "fired", cmd[1]))
        elif op == "fail":
            kernel.fire(events[cmd[1]], None, RuntimeError(cmd[2]))
            log.append((kernel.now, pid, "failed", cmd[1]))
        elif op == "spawn":
            cid = f"{pid}.{len(children)}"
            gen = _ref_driver(kernel, events, cid, cmd[1], log)
            children.append(kernel.spawn(gen))
            log.append((kernel.now, pid, "spawn", cid))
        elif op == "spawn_fail":
            cid = f"{pid}.{len(children)}"
            gen = _ref_driver(kernel, events, cid, [("sleep", 1), ("raise", cmd[1])], log)
            children.append(kernel.spawn(gen))
            log.append((kernel.now, pid, "spawn", cid))
        elif op == "join":
            if children:
                child = children.pop()
                try:
                    got = yield child
                    log.append((kernel.now, pid, "joined", got))
                except RuntimeError as err:
                    log.append((kernel.now, pid, "joined-err", str(err)))
        elif op == "raise":
            raise RuntimeError(cmd[1])
        elif op == "ret":
            ret = cmd[1]
    return ret


def run_on_engine(scenario, tracer=None):
    n_events, scripts = scenario
    engine = Engine(tracer=tracer)
    events = [engine.event() for _ in range(n_events)]
    log = []
    for i, script in enumerate(scripts):
        engine.process(_engine_driver(engine, events, f"p{i}", script, log), name=f"p{i}")
    final = engine.run()
    return log, final


def run_on_reference(scenario):
    n_events, scripts = scenario
    kernel = RefKernel()
    events = [RefWaitable() for _ in range(n_events)]
    log = []
    for i, script in enumerate(scripts):
        kernel.spawn(_ref_driver(kernel, events, f"p{i}", script, log))
    final = kernel.run()
    return log, final


def _random_script(rng, untriggered, depth, length):
    """One random script; ``untriggered`` ensures each event fires at most once."""
    script = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.30:
            script.append(("sleep", rng.randint(0, 3)))  # 0 exercises the sync path
        elif roll < 0.45:
            script.append(("mark", rng.randint(0, 99)))
        elif roll < 0.62:
            script.append(("wait", rng.randrange(len(untriggered) + 2) % 7))
        elif roll < 0.78 and untriggered:
            i = untriggered.pop()
            if rng.random() < 0.8:
                script.append(("succeed", i, rng.randint(0, 50)))
            else:
                script.append(("fail", i, f"boom{i}"))
        elif roll < 0.88 and depth < 2:
            child = _random_script(rng, untriggered, depth + 1, rng.randint(1, 4))
            child.append(("ret", rng.randint(0, 9)))
            script.append(("spawn", child))
            if rng.random() < 0.7:
                script.append(("join",))
        elif roll < 0.94:
            script.append(("spawn_fail", f"crash{rng.randint(0, 9)}"))
            script.append(("join",))  # must observe the failure
        else:
            script.append(("join",))
    return script


def _random_scenario(seed):
    rng = random.Random(seed)
    n_events = 7
    untriggered = list(range(n_events))
    rng.shuffle(untriggered)
    scripts = [
        _random_script(rng, untriggered, 0, rng.randint(3, 9))
        for _ in range(rng.randint(2, 5))
    ]
    return n_events, scripts


# crafted scenarios for the orderings the now-queue optimization relies on
_TIE_SCENARIO = (
    2,
    [
        # p0 and p1 wake at the same timestamps repeatedly: tie order must be
        # spawn/schedule order, every round.
        [("sleep", 2), ("mark", 0), ("sleep", 2), ("mark", 1), ("succeed", 0, 7)],
        [("sleep", 2), ("mark", 10), ("sleep", 2), ("mark", 11), ("wait", 0)],
        [("sleep", 4), ("mark", 20), ("wait", 0), ("mark", 21)],
    ],
)

_ZERO_SLEEP_SCENARIO = (
    1,
    [
        # Zero sleeps continue synchronously: all of p0 runs before p1 starts.
        [("sleep", 0), ("mark", 0), ("sleep", 0), ("mark", 1), ("succeed", 0, 1)],
        [("wait", 0), ("sleep", 0), ("mark", 2)],
    ],
)

_TRIGGERED_WAIT_SCENARIO = (
    2,
    [
        # Waiting on an already-triggered event continues without suspending.
        [("succeed", 0, 5), ("wait", 0), ("mark", 0), ("fail", 1, "late"), ("wait", 1)],
        [("sleep", 1), ("wait", 0), ("wait", 1), ("mark", 1)],
    ],
)


@pytest.mark.parametrize("scenario", [_TIE_SCENARIO, _ZERO_SLEEP_SCENARIO, _TRIGGERED_WAIT_SCENARIO])
def test_crafted_scenarios_match_reference(scenario):
    engine_log, engine_final = run_on_engine(scenario)
    ref_log, ref_final = run_on_reference(scenario)
    assert engine_log == ref_log
    assert engine_final == ref_final
    assert engine_log, "scenario produced no observations"


@pytest.mark.parametrize("seed", range(40))
def test_random_scenarios_match_reference(seed):
    scenario = _random_scenario(seed)
    engine_log, engine_final = run_on_engine(scenario)
    ref_log, ref_final = run_on_reference(scenario)
    assert engine_log == ref_log
    assert engine_final == ref_final


@pytest.mark.parametrize("seed", range(0, 40, 5))
def test_engine_is_deterministic(seed):
    scenario = _random_scenario(seed)
    first = run_on_engine(scenario)
    second = run_on_engine(scenario)
    assert first == second


@pytest.mark.parametrize("seed", range(0, 40, 5))
def test_tracing_does_not_change_semantics(seed):
    """The _trace fast-flag must only skip tracer calls, never reorder."""
    scenario = _random_scenario(seed)
    untraced = run_on_engine(scenario)
    traced = run_on_engine(scenario, tracer=Tracer())
    assert traced == untraced


# ---------------------------------------------------------------------------
# Measurement-primitive cache properties.
# ---------------------------------------------------------------------------


def _random_samples(rng, n):
    # Mix magnitudes so samples land in sub-bucket, low-octave and
    # high-octave ranges (new-bucket creation interleaves with re-use).
    return [
        rng.choice(
            (
                rng.randint(0, 31),
                rng.randint(32, 4096),
                rng.randint(4096, 50_000_000),
            )
        )
        for _ in range(n)
    ]


@pytest.mark.parametrize("seed", range(12))
def test_histogram_percentile_cache_interleaving(seed):
    """record/percentile interleaving must equal a freshly built histogram.

    The sorted-bucket cache is kept across records into existing buckets and
    invalidated on new buckets; querying percentiles mid-stream must never
    change any later answer.
    """
    rng = random.Random(1000 + seed)
    samples = _random_samples(rng, 300)
    percentiles = (0.0, 10.0, 50.0, 90.0, 99.0, 100.0)

    interleaved = LatencyHistogram("interleaved")
    for i, value in enumerate(samples):
        interleaved.record(value)
        if i % 7 == 0:
            interleaved.percentile(rng.uniform(0.0, 100.0))  # poke the cache

    fresh = LatencyHistogram("fresh")
    for value in samples:
        fresh.record(value)

    for p in percentiles:
        assert interleaved.percentile(p) == fresh.percentile(p)
    assert interleaved.count == fresh.count
    assert interleaved.total == fresh.total


def test_histogram_cache_survives_merge_and_reset():
    rng = random.Random(7)
    a = LatencyHistogram("a")
    b = LatencyHistogram("b")
    sa = _random_samples(rng, 200)
    sb = _random_samples(rng, 200)
    for v in sa:
        a.record(v)
    a.percentile(50.0)  # populate the cache before merge
    for v in sb:
        b.record(v)
    a.merge(b)

    fresh = LatencyHistogram("fresh")
    for v in sa + sb:
        fresh.record(v)
    for p in (1.0, 50.0, 90.0, 99.9):
        assert a.percentile(p) == fresh.percentile(p)

    a.reset()
    assert a.count == 0
    assert a.percentile(90.0) == 0.0
    a.record(17)
    assert a.percentile(100.0) == 17.0


@pytest.mark.parametrize("seed", range(8))
def test_rate_between_matches_full_scan(seed):
    """The windowed bucket scan must count exactly what a full scan counts."""
    from repro.sim.units import SEC

    rng = random.Random(300 + seed)
    bucket_ns = rng.choice((1_000, 7_919, SEC))
    ts = TimeSeries(bucket_ns=bucket_ns, name="t")
    horizon = bucket_ns * 50
    for _ in range(400):
        ts.record(rng.randint(0, horizon), n=rng.randint(1, 3))

    for _ in range(30):
        a = rng.randint(0, horizon)
        b = rng.randint(0, horizon)
        start, end = min(a, b), max(a, b)
        got = ts.rate_between(start, end)
        if end <= start:
            assert got == 0.0
            continue
        # Reference: walk every bucket ever recorded.
        total = sum(
            n
            for idx, n in ts._buckets.items()
            if start <= idx * bucket_ns < end
        )
        assert got == pytest.approx(total * SEC / (end - start))
