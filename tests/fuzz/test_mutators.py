"""Property tests for the schedule mutators.

Whatever chain of operators a seed drives, a mutated schedule must stay
(a) schema-valid — every spec rebuilds through ``FaultSpec.__post_init__``;
(b) inside the context bounds — no trigger past the horizon, windowed
contexts keep triggers in-window, storm contexts stay transient;
(c) JSON round-trippable byte-for-byte; and (d) replayable — the same
seed produces the same mutation chain.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    DEVICE_KINDS,
    FS_KINDS,
    READ_ERROR,
    WRITE_ERROR,
    FaultSchedule,
)
from repro.faults.mutate import (
    CLUSTER_MUTATION_KINDS,
    DST_MUTATION_KINDS,
    STORM_MUTATION_KINDS,
    MutationContext,
    clamp_schedule,
    draw_spec,
    mutate_schedule,
)
from repro.fuzz.corpus import bootstrap_genomes
from repro.fuzz.genome import MODE_CLUSTER, MODE_DST, MODE_STORM, Genome
from repro.fuzz.mutators import mutate_genome
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us

pytestmark = pytest.mark.fuzz

HORIZON = ms(30)

CONTEXTS = {
    "dst": MutationContext(horizon_ns=HORIZON, kinds=DST_MUTATION_KINDS),
    "storm": MutationContext(
        horizon_ns=HORIZON,
        kinds=STORM_MUTATION_KINDS,
        window=(HORIZON // 4, HORIZON // 2),
        transient_only=True,
    ),
    "cluster": MutationContext(
        horizon_ns=HORIZON, kinds=CLUSTER_MUTATION_KINDS, n_nodes=3
    ),
}


def _check_bounds(schedule: FaultSchedule, ctx: MutationContext) -> None:
    assert len(schedule) <= ctx.max_specs + 1  # duplicate/add respect the cap
    for spec in schedule.specs:
        if spec.at_time is not None:
            assert ctx.trigger_lo <= spec.at_time <= ctx.trigger_hi
        elif ctx.window is not None:
            pytest.fail(f"windowed context left a time-less spec: {spec}")
        if spec.until_time is not None:
            assert spec.until_time <= ctx.until_hi
        if ctx.transient_only and spec.kind in (READ_ERROR, WRITE_ERROR):
            assert spec.transient
        if ctx.n_nodes >= 2:
            if spec.node is not None:
                assert 0 <= spec.node < ctx.n_nodes
            if spec.nodes is not None:
                assert all(0 <= n < ctx.n_nodes for n in spec.nodes)
                assert len(spec.nodes) < ctx.n_nodes
        assert spec.kind in ctx.kinds or spec.kind in (DEVICE_KINDS | FS_KINDS)


@pytest.mark.parametrize("ctx_name", sorted(CONTEXTS))
@pytest.mark.parametrize("seed", range(8))
class TestMutationChains:
    def test_chains_stay_valid_and_bounded(self, ctx_name, seed):
        ctx = CONTEXTS[ctx_name]
        rng = RandomStream(seed, f"mutchain/{ctx_name}")
        schedule = FaultSchedule()
        for step in range(25):
            schedule = mutate_schedule(schedule, rng.fork(f"step/{step}"), ctx)
            _check_bounds(schedule, ctx)
            # Byte-for-byte JSON round trip at every step.
            again = FaultSchedule.from_json(schedule.to_json())
            assert again.specs == schedule.specs
            assert again.to_json() == schedule.to_json()

    def test_chains_replay_from_the_seed(self, ctx_name, seed):
        ctx = CONTEXTS[ctx_name]

        def chain():
            rng = RandomStream(seed, f"mutreplay/{ctx_name}")
            schedule = FaultSchedule()
            for step in range(10):
                schedule = mutate_schedule(schedule, rng.fork(f"step/{step}"), ctx)
            return schedule.to_json()

        assert chain() == chain()


class TestDrawAndClamp:
    @pytest.mark.parametrize("ctx_name", sorted(CONTEXTS))
    def test_drawn_specs_clamp_to_themselves(self, ctx_name):
        ctx = CONTEXTS[ctx_name]
        rng = RandomStream(11, f"draw/{ctx_name}")
        for i in range(50):
            spec = draw_spec(rng.fork(f"spec/{i}"), ctx)
            if spec is None:
                continue
            schedule = clamp_schedule(FaultSchedule([spec]), ctx)
            _check_bounds(schedule, ctx)

    def test_clamp_folds_out_of_range_triggers(self):
        # Specs drawn against a 100x horizon land far outside the storm
        # context's window; clamping must fold every one of them back in.
        ctx = CONTEXTS["storm"]
        rng = RandomStream(5, "clampfold")
        wild = MutationContext(horizon_ns=HORIZON * 100, kinds=STORM_MUTATION_KINDS)
        schedule = FaultSchedule(
            [s for s in (draw_spec(rng.fork(str(i)), wild) for i in range(10)) if s]
        )
        assert any(s.at_time > ctx.trigger_hi for s in schedule.specs)
        _check_bounds(clamp_schedule(schedule, ctx), ctx)


class TestGenomeMutation:
    @pytest.mark.parametrize("mode", [MODE_DST, MODE_STORM, MODE_CLUSTER])
    def test_mutated_genomes_stay_valid(self, mode):
        genome = next(iter(bootstrap_genomes([mode])))
        rng = RandomStream(17, f"genmut/{mode}")
        for step in range(30):
            genome = mutate_genome(genome, rng.fork(f"step/{step}"))
            # Construction re-validates; a bad mutant would raise here.
            assert Genome.from_json(genome.to_json()) == genome
            _check_bounds(genome.schedule, genome.mutation_context())

    def test_genome_mutation_is_seed_deterministic(self):
        genome = next(iter(bootstrap_genomes([MODE_DST])))
        a = mutate_genome(genome, RandomStream(9, "gen"))
        b = mutate_genome(genome, RandomStream(9, "gen"))
        assert a == b and a.to_json() == b.to_json()
