"""The coverage signal and the fuzz loop: determinism and jobs-invariance."""

from __future__ import annotations

import pytest

from repro.fuzz.fuzzer import FuzzConfig, run_fuzz
from repro.fuzz.genome import MODE_DST
from repro.obs.vocab import (
    log_vocabulary,
    normalize_log_line,
    normalize_trace_name,
    vocabulary_fingerprint,
)

pytestmark = pytest.mark.fuzz


class TestNormalization:
    def test_trace_names_fold_long_digit_runs(self):
        assert normalize_trace_name("compact-L0-000042") == "compact-L0-#"
        assert normalize_trace_name("wal/17.log") == "wal/#.log"
        # Single digits are structure (level numbers), not identifiers.
        assert normalize_trace_name("flush-L0") == "flush-L0"

    def test_log_lines_fold_values_not_shape(self):
        a = normalize_log_line("t=123456 write_error write transient=True")
        b = normalize_log_line("t=998 write_error write transient=True")
        assert a == b
        assert "123456" not in a

    def test_zero_stays_distinguishable(self):
        # "0 faults fired" and "N faults fired" are different behaviours.
        zero = normalize_log_line("faults_fired=0")
        some = normalize_log_line("faults_fired=7")
        assert zero != some

    def test_fingerprint_is_order_free(self):
        items = ["b", "a", "c"]
        assert vocabulary_fingerprint(items) == vocabulary_fingerprint(
            reversed(items)
        )
        assert vocabulary_fingerprint(items) == vocabulary_fingerprint(
            items + ["a"]
        )

    def test_log_vocabulary_dedupes_shapes(self):
        # Timestamps and magnitudes are values (folded); read-vs-write is
        # shape (kept).
        lines = [
            "t=1 latency_spike read +5000ns",
            "t=2 latency_spike read +800ns",
            "t=9 latency_spike write +5000ns",
        ]
        assert len(log_vocabulary(lines)) == 2


class TestFuzzLoop:
    CONFIG = dict(
        seed=3,
        iters=6,
        batch=3,
        modes=(MODE_DST,),
        corpus_dir=None,  # bootstrap seeds only: no filesystem dependence
        minimize_crashers=False,
    )

    def test_same_seed_same_report(self):
        a = run_fuzz(FuzzConfig(**self.CONFIG))
        b = run_fuzz(FuzzConfig(**self.CONFIG))
        assert a.coverage == b.coverage
        assert a.fingerprint == b.fingerprint
        assert a.executed == b.executed == 6
        assert len(a.crashers) == len(b.crashers)

    def test_jobs_do_not_change_results(self):
        serial = run_fuzz(FuzzConfig(**self.CONFIG, jobs=1))
        parallel = run_fuzz(FuzzConfig(**self.CONFIG, jobs=2))
        assert serial.coverage == parallel.coverage
        assert serial.fingerprint == parallel.fingerprint
        assert serial.pool_size == parallel.pool_size
        assert [c.signature for c in serial.crashers] == [
            c.signature for c in parallel.crashers
        ]

    def test_bootstrap_seeds_find_no_crashers(self):
        report = run_fuzz(FuzzConfig(**self.CONFIG))
        assert not report.crashers
        assert report.coverage_count > 0
