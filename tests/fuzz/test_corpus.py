"""The regression-corpus tier: every ``tests/corpus/*.json`` replays.

Each committed corpus entry is a full scenario (harness mode, workload
knobs, fault schedule) plus the verdict its replay must produce.  This
module auto-collects the directory into parametrized cases, so adding a
minimized fuzzer find to ``tests/corpus/`` *is* adding a regression
test — no code change required.
"""

from __future__ import annotations

import os

import pytest

from repro.fuzz.corpus import CorpusEntry, corpus_files, load_corpus
from repro.fuzz.executor import execute

pytestmark = pytest.mark.fuzz

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")


def _cases():
    paths = corpus_files(CORPUS_DIR)
    return pytest.mark.parametrize(
        "path", paths, ids=[os.path.splitext(os.path.basename(p))[0] for p in paths]
    )


class TestCorpusIntegrity:
    def test_corpus_is_not_empty(self):
        assert corpus_files(CORPUS_DIR), "committed corpus went missing"

    def test_entries_parse_and_round_trip(self):
        for entry in load_corpus(CORPUS_DIR):
            again = CorpusEntry.from_json(entry.to_json())
            assert again == entry

    def test_names_match_files_and_are_unique(self):
        entries = load_corpus(CORPUS_DIR)
        names = [e.name for e in entries]
        assert len(set(names)) == len(names)
        for path, entry in zip(corpus_files(CORPUS_DIR), entries):
            assert os.path.basename(path) == f"{entry.name}.json"


class TestCorpusReplay:
    @_cases()
    def test_replay_matches_expectation(self, path):
        entry = CorpusEntry.from_file(path)
        outcome = execute(entry.genome)
        assert outcome.ok == entry.expect_ok, (
            f"{entry.name}: expected ok={entry.expect_ok}, got "
            f"{outcome.verdict} ({outcome.reason})"
        )
        if not entry.expect_ok:
            assert outcome.signature == entry.expect_signature
