"""Genome serialisation, validation, and bootstrap/harness equivalence."""

from __future__ import annotations

import json

import pytest

from repro.dst.harness import DstConfig, DstRun
from repro.errors import FaultConfigError
from repro.faults import CRASH, LATENCY_SPIKE, FaultSchedule, FaultSpec
from repro.fuzz.corpus import bootstrap_genomes
from repro.fuzz.executor import build_run, execute
from repro.fuzz.genome import (
    MODE_CLUSTER,
    MODE_DST,
    MODE_STORM,
    MODES,
    OPS_BOUNDS,
    Genome,
)

pytestmark = pytest.mark.fuzz


def _dst_genome(**overrides) -> Genome:
    base = dict(
        mode=MODE_DST,
        workload_seed=3,
        num_ops=200,
        num_keys=16,
        schedule=FaultSchedule(
            [
                FaultSpec(LATENCY_SPIKE, at_time=1000, extra_ns=5000),
                FaultSpec(CRASH, at_time=2_000_000),
            ]
        ),
    )
    base.update(overrides)
    return Genome(**base)


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        g = _dst_genome()
        again = Genome.from_json(g.to_json())
        assert again == g

    def test_serialisation_is_byte_stable(self):
        g = _dst_genome()
        assert g.to_json() == Genome.from_json(g.to_json()).to_json()

    def test_cluster_and_storm_fields_survive(self):
        cluster = Genome(
            MODE_CLUSTER, workload_seed=1, num_ops=80, num_keys=12, n_nodes=3
        )
        storm = Genome(
            MODE_STORM, workload_seed=2, num_ops=200, num_keys=24, storm_kind="io"
        )
        assert Genome.from_json(cluster.to_json()).n_nodes == 3
        assert Genome.from_json(storm.to_json()).storm_kind == "io"

    def test_mode_specific_keys_are_elided(self):
        head = json.loads(_dst_genome().to_json())
        assert "n_nodes" not in head and "storm_kind" not in head


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultConfigError):
            Genome("nope", workload_seed=0, num_ops=100, num_keys=16)

    @pytest.mark.parametrize("mode", MODES)
    def test_ops_bounds_enforced(self, mode):
        lo, hi = OPS_BOUNDS[mode]
        extra = (
            {"n_nodes": 3}
            if mode == MODE_CLUSTER
            else {"storm_kind": "io"}
            if mode == MODE_STORM
            else {}
        )
        with pytest.raises(FaultConfigError):
            Genome(mode, workload_seed=0, num_ops=hi + 1, num_keys=16, **extra)
        with pytest.raises(FaultConfigError):
            Genome(mode, workload_seed=0, num_ops=lo - 1, num_keys=16, **extra)

    def test_cluster_needs_nodes_and_storm_needs_kind(self):
        with pytest.raises(FaultConfigError):
            Genome(MODE_CLUSTER, workload_seed=0, num_ops=80, num_keys=12)
        with pytest.raises(FaultConfigError):
            Genome(MODE_STORM, workload_seed=0, num_ops=200, num_keys=16)
        with pytest.raises(FaultConfigError):
            Genome(MODE_DST, workload_seed=0, num_ops=100, num_keys=16, n_nodes=3)

    def test_garbage_json_rejected(self):
        with pytest.raises(FaultConfigError):
            Genome.from_json("not json")
        with pytest.raises(FaultConfigError):
            Genome.from_json("[1, 2]")
        with pytest.raises(FaultConfigError):
            Genome.from_json('{"fuzz_genome": 99}')


class TestBootstrap:
    def test_bootstrap_covers_requested_modes(self):
        genomes = bootstrap_genomes()
        assert {g.mode for g in genomes} == set(MODES)
        only_dst = bootstrap_genomes([MODE_DST])
        assert {g.mode for g in only_dst} == {MODE_DST}

    def test_bootstrap_genomes_round_trip(self):
        for g in bootstrap_genomes():
            assert Genome.from_json(g.to_json()) == g

    def test_dst_bootstrap_equals_native_harness_run(self):
        # The bootstrap genome pre-draws the schedule the harness would
        # draw itself; replaying it through the executor's config
        # override must reproduce the native run event-for-event.
        genome = next(g for g in bootstrap_genomes([MODE_DST]) if g.workload_seed == 0)
        native = DstRun(0, DstConfig()).run()
        replayed = build_run(genome).run()
        assert replayed.ok == native.ok
        assert replayed.events == native.events

    def test_executor_outcome_is_deterministic(self):
        genome = next(iter(bootstrap_genomes([MODE_DST])))
        a = execute(genome)
        b = execute(genome)
        assert a.ok and b.ok
        assert a.vocab == b.vocab
        assert a.faults_fired == b.faults_fired
        assert a.trace_events == b.trace_events
