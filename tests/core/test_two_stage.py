"""Tests for case study A: two-stage throttling."""

import pytest

from repro.core.two_stage_throttle import (
    STAGE_AGGRESSIVE,
    STAGE_NONE,
    STAGE_SLIGHT,
    TwoStageWriteController,
    make_two_stage_controller,
)
from repro.lsm.write_controller import DELAYED, NORMAL, STOPPED, StallMetrics
from repro.sim.units import MB
from tests.conftest import tiny_options


def metrics(l0=0, imm=0):
    return StallMetrics(
        l0_files=l0,
        immutable_memtables=imm,
        max_immutable_memtables=1,
        pending_compaction_bytes=0,
    )


def make(engine, **opts):
    return TwoStageWriteController(engine, tiny_options(**opts))


def test_midpoint_computed_per_paper(engine):
    # (slowdown + stop) / 2 with defaults 20 and 36 => 28
    wc = make(engine)
    assert wc.midpoint == 28


def test_stage_none_below_slowdown(engine):
    wc = make(engine)
    assert wc.pick_state(metrics(l0=10)) == NORMAL
    assert wc.stage == STAGE_NONE


def test_stage_slight_between_slowdown_and_midpoint(engine):
    wc = make(engine)
    assert wc.pick_state(metrics(l0=22)) == DELAYED
    assert wc.stage == STAGE_SLIGHT


def test_stage_aggressive_past_midpoint(engine):
    wc = make(engine)
    assert wc.pick_state(metrics(l0=30)) == DELAYED
    assert wc.stage == STAGE_AGGRESSIVE


def test_stop_still_applies(engine):
    wc = make(engine)
    assert wc.pick_state(metrics(l0=36)) == STOPPED
    assert wc.stage == STAGE_AGGRESSIVE


def test_stage1_pins_rate_at_user_floor(engine):
    """Slight throttling never decays below delayed_write_rate."""
    wc = make(engine, delayed_write_rate=16 * MB)
    wc.update(metrics(l0=22))
    for i in range(50):
        wc.on_delayed_write(backlog_bytes=i + 1)  # growing backlog
    assert wc.delayed_write_rate == 16 * MB
    assert wc.stats.get("stage1_writes") == 50


def test_stage2_adapts_like_original(engine):
    wc = make(engine, delayed_write_rate=16 * MB)
    wc.update(metrics(l0=30))
    for i in range(50):
        wc.on_delayed_write(backlog_bytes=i + 1)
    assert wc.delayed_write_rate < 16 * MB
    assert wc.stats.get("stage2_writes") == 50


def test_transition_slight_to_aggressive(engine):
    wc = make(engine, delayed_write_rate=16 * MB)
    wc.update(metrics(l0=22))
    wc.on_delayed_write(1)
    assert wc.stage == STAGE_SLIGHT
    wc.update(metrics(l0=30))
    assert wc.stage == STAGE_AGGRESSIVE


def test_stage1_gives_higher_floor_than_original_min(engine):
    """The whole point: slight throttling >> the collapsed original rate."""
    wc = make(engine, delayed_write_rate=16 * MB)
    wc.update(metrics(l0=22))
    for i in range(100):
        wc.on_delayed_write(backlog_bytes=i + 1)
    assert wc.delayed_write_rate / wc.options.min_delayed_write_rate >= 16


def test_factory(engine):
    wc = make_two_stage_controller(engine, tiny_options())
    assert isinstance(wc, TwoStageWriteController)
