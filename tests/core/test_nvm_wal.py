"""Tests for case study C: NVM-resident WAL."""

import pytest

from repro.core.nvm_wal import LoggingConfig, logging_configurations
from repro.harness.machine import Machine
from repro.lsm.options import WAL_BUFFERED, WAL_OFF
from repro.sim.units import mb
from repro.storage.profiles import xpoint_ssd
from tests.conftest import run_op, tiny_options


def test_three_configurations():
    configs = logging_configurations()
    assert [c.label for c in configs] == ["wal-ssd", "wal-nvm", "wal-off"]
    assert configs[0].wal_mode == WAL_BUFFERED and not configs[0].wal_on_nvm
    assert configs[1].wal_mode == WAL_BUFFERED and configs[1].wal_on_nvm
    assert configs[2].wal_mode == WAL_OFF


def test_apply_sets_mode_and_label():
    opts = logging_configurations()[2].apply(tiny_options())
    assert opts.wal_mode == WAL_OFF
    assert "wal-off" in opts.name


def test_wal_on_nvm_writes_to_nvm_device(engine):
    machine = Machine.create(xpoint_ssd(), page_cache_bytes=mb(8), with_nvm=True)
    db = machine.open_db(tiny_options(), wal_on_nvm=True)
    run_op(machine.engine, db.put(b"k", b"v" * 2000))

    def drain():
        yield from db.wal.sync()

    run_op(machine.engine, drain())
    assert machine.nvm_fs.stats.get("bytes_appended") > 0
    assert machine.fs.stats.get("bytes_appended") == 0  # data device untouched by WAL


def test_wal_on_nvm_requires_nvm_machine():
    machine = Machine.create(xpoint_ssd(), page_cache_bytes=mb(8), with_nvm=False)
    with pytest.raises(ValueError):
        machine.open_db(tiny_options(), wal_on_nvm=True)


def test_nvm_wal_recovery_roundtrip(engine):
    """Data logged to NVM replays after a crash of both filesystems."""
    machine = Machine.create(xpoint_ssd(), page_cache_bytes=mb(8), with_nvm=True)
    db = machine.open_db(tiny_options(wal_mode="sync"), wal_on_nvm=True)
    run_op(machine.engine, db.put(b"nv-key", b"nv-value"))
    machine.fs.crash()
    machine.nvm_fs.crash()
    db2 = machine.open_db(tiny_options(wal_mode="sync"), wal_on_nvm=True)
    assert run_op(machine.engine, db2.get(b"nv-key")) == b"nv-value"
