"""Tests for the bottleneck analyzers."""

import pytest

from repro.core.bottlenecks import (
    NearStopPeriod,
    near_stop_fraction,
    near_stop_periods,
    read_amplification,
    stall_summary,
    throughput_variation,
    write_amplification,
)
from tests.conftest import make_db, run_op


def series(rates):
    return [(float(t), float(r)) for t, r in enumerate(rates)]


class TestNearStop:
    def test_detects_one_valley(self):
        s = series([50_000, 40_000, 5_000, 3_000, 45_000])
        periods = near_stop_periods(s)
        assert len(periods) == 1
        assert periods[0].start_s == 2.0
        assert periods[0].end_s == 4.0
        assert periods[0].duration_s == 2.0

    def test_detects_trailing_valley(self):
        s = series([50_000, 5_000])
        periods = near_stop_periods(s)
        assert len(periods) == 1
        assert periods[0].end_s == 2.0

    def test_no_valleys(self):
        assert near_stop_periods(series([50_000, 60_000])) == []

    def test_custom_threshold(self):
        s = series([15_000, 15_000])
        assert near_stop_periods(s, threshold_ops=10_000) == []
        assert len(near_stop_periods(s, threshold_ops=20_000)) == 1

    def test_fraction(self):
        s = series([50_000, 5_000, 5_000, 50_000])
        assert near_stop_fraction(s) == pytest.approx(0.5)
        assert near_stop_fraction([]) == 0.0


class TestVariation:
    def test_stats(self):
        stats = throughput_variation(series([10, 20, 30]))
        assert stats["min"] == 10
        assert stats["max"] == 30
        assert stats["mean"] == pytest.approx(20)
        assert stats["cov"] > 0

    def test_constant_series_zero_cov(self):
        assert throughput_variation(series([5, 5, 5]))["cov"] == 0.0

    def test_empty(self):
        assert throughput_variation([])["mean"] == 0.0


class TestDbDerivedMetrics:
    def test_read_amplification_zero_without_gets(self, engine):
        db = make_db(engine)
        assert read_amplification(db) == 0.0

    def test_read_amplification_counts_device_reads(self, engine):
        db = make_db(engine)
        db.stats.inc("gets", 10)
        db.stats.inc("get.block_device_reads", 15)
        assert read_amplification(db) == pytest.approx(1.5)

    def test_stall_summary_keys(self, engine):
        db = make_db(engine)
        summary = stall_summary(db)
        assert set(summary) == {
            "delayed_writes",
            "delay_seconds",
            "stop_waits",
            "slowdown_transitions",
            "stop_transitions",
        }

    def test_write_amplification(self, engine):
        db = make_db(engine)
        assert write_amplification(db) == 0.0
        db.stats.inc("flush.bytes", 100)
        db.stats.inc("compaction.bytes_written", 300)
        assert write_amplification(db) == pytest.approx(4.0)
