"""Tests for case study B: dynamic Level-0 management."""

import pytest

from repro.core.dynamic_l0 import DynamicL0Manager, dynamic_l0_options
from repro.errors import DBError
from repro.sim.units import mb
from tests.conftest import make_db, run_op, tiny_options


def make_manager(engine, volume=mb(12), **kwargs):
    db = make_db(engine)
    manager = DynamicL0Manager(db, l0_volume_bytes=volume, **kwargs)
    return db, manager


def test_options_helper_sets_trigger_24():
    opts = dynamic_l0_options(tiny_options())
    assert opts.level0_slowdown_writes_trigger == 24
    assert opts.level0_stop_writes_trigger >= 36
    assert "dynamic-l0" in opts.name


def test_initial_mode_write_intensive(engine):
    db, manager = make_manager(engine)
    assert manager.mode == "write-intensive"
    assert db.options.write_buffer_size == mb(12) // 24


def test_switch_to_read_intensive(engine):
    db, manager = make_manager(engine)
    manager.step(write_fraction=0.1)  # below the 25% threshold
    assert manager.mode == "read-intensive"
    assert db.options.write_buffer_size == mb(12) // 6
    assert manager.mode_switches == 1


def test_switch_back_to_write_intensive(engine):
    db, manager = make_manager(engine)
    manager.step(0.1)
    manager.step(0.6)
    assert manager.mode == "write-intensive"
    assert manager.mode_switches == 2


def test_threshold_boundary(engine):
    _, manager = make_manager(engine)
    manager.step(0.25)  # paper: "more than 25%" => not strictly greater
    assert manager.mode == "read-intensive"
    manager.step(0.251)
    assert manager.mode == "write-intensive"


def test_none_sample_is_ignored(engine):
    _, manager = make_manager(engine)
    manager.step(0.1)
    switches = manager.mode_switches
    manager.step(None)
    assert manager.mode_switches == switches


def test_observed_write_fraction_uses_deltas(engine):
    db, manager = make_manager(engine)
    run_op(engine, db.put(b"k1", b"v"))
    run_op(engine, db.get(b"k1"))
    run_op(engine, db.get(b"k2"))
    frac = manager.observed_write_fraction()
    assert frac == pytest.approx(1 / 3)
    # Second sample with no traffic: None.
    assert manager.observed_write_fraction() is None


def test_background_process_adapts(engine):
    db, manager = make_manager(engine, volume=mb(12))
    manager.start()

    def reader():
        for i in range(100):
            yield from db.get(b"%06d" % i)
        yield manager.sample_interval_ns * 2

    run_op(engine, reader())
    assert manager.mode == "read-intensive"


def test_start_twice_rejected(engine):
    _, manager = make_manager(engine)
    manager.start()
    with pytest.raises(DBError):
        manager.start()


def test_validation():
    from repro.sim.engine import Engine

    engine = Engine()
    db = make_db(engine)
    with pytest.raises(DBError):
        DynamicL0Manager(db, l0_volume_bytes=0)
    with pytest.raises(DBError):
        DynamicL0Manager(db, l0_volume_bytes=mb(1), read_intensive_files=30)
    with pytest.raises(DBError):
        DynamicL0Manager(db, l0_volume_bytes=mb(1), write_intensive_threshold=1.5)


def test_paper_file_counts_default():
    from repro.sim.engine import Engine

    engine = Engine()
    db = make_db(engine)
    manager = DynamicL0Manager(db, l0_volume_bytes=mb(24))
    assert manager.read_intensive_files == 6
    assert manager.write_intensive_files == 24
