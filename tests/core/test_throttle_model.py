"""Tests for the Analysis #1 analytic throttling model (Eqs. 1-2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.throttle_model import (
    ThrottleScenario,
    application_kops,
    model_table,
    paper_scenarios,
)
from repro.errors import ReproError
from repro.sim.units import us


def test_paper_xpoint_value():
    scenario = ThrottleScenario("xpoint", 190.0, us(15))
    assert application_kops(scenario) == pytest.approx(2.74, abs=0.01)


def test_paper_sata_value():
    scenario = ThrottleScenario("sata", 130.0, us(15))
    assert application_kops(scenario) == pytest.approx(1.88, abs=0.01)


def test_model_table_matches_paper():
    for row in model_table():
        assert row["lambda_a_kops"] == pytest.approx(row["paper_kops"], abs=0.01)


def test_paper_scenarios_listed():
    names = [s.name for s in paper_scenarios()]
    assert names == ["xpoint", "sata-flash"]


def test_validation():
    with pytest.raises(ReproError):
        ThrottleScenario("x", 0.0, us(15))
    with pytest.raises(ReproError):
        ThrottleScenario("x", 100.0, 0)
    with pytest.raises(ReproError):
        ThrottleScenario("x", 100.0, us(15), refill_interval_ns=0)


@given(
    lam=st.floats(min_value=1.0, max_value=1000.0),
    t=st.integers(min_value=1000, max_value=1_000_000),
)
def test_throttled_throughput_below_system(lam, t):
    """Eq. 2 always predicts lambda_a < lambda_s (throttling only hurts)."""
    scenario = ThrottleScenario("any", lam, t)
    out = application_kops(scenario)
    assert 0 < out < lam


@given(t=st.integers(min_value=1000, max_value=500_000))
def test_longer_write_latency_less_relative_damage(t):
    """As t grows relative to the refill interval, lambda_a approaches lambda_s."""
    base = application_kops(ThrottleScenario("a", 100.0, t))
    slower = application_kops(ThrottleScenario("a", 100.0, t * 2))
    assert slower > base
