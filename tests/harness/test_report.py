"""Tests for experiment result containers and table rendering."""

import pytest

from repro.harness.report import (
    ExperimentResult,
    format_table,
    render_sparkline,
)


def make_result():
    res = ExperimentResult(
        exp_id="figX",
        title="Example",
        columns=["device", "kops"],
        paper_expectation="something",
    )
    res.add_row(device="sata", kops=12.3)
    res.add_row(device="xpoint", kops=99.9)
    return res


def test_add_and_column():
    res = make_result()
    assert res.column("device") == ["sata", "xpoint"]
    assert res.column("kops") == [12.3, 99.9]


def test_row_for():
    res = make_result()
    assert res.row_for(device="xpoint")["kops"] == 99.9
    with pytest.raises(KeyError):
        res.row_for(device="optane")


def test_table_str_contains_data():
    text = make_result().table_str()
    assert "figX" in text
    assert "device" in text and "kops" in text
    assert "xpoint" in text and "99.9" in text


def test_render_includes_expectation_and_series():
    res = make_result()
    res.series["xpoint"] = [(0.0, 1000.0), (1.0, 0.0)]
    out = res.render()
    assert "paper expectation: something" in out
    assert "xpoint: [" in out


def test_format_table_alignment():
    text = format_table(["a", "b"], [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.123}])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


def test_format_table_empty_rows():
    text = format_table(["x"], [])
    assert "x" in text


def test_sparkline_shapes():
    flat = render_sparkline("flat", [(0, 50.0), (1, 50.0)])
    assert flat.count("@") == 2
    dip = render_sparkline("dip", [(0, 100.0), (1, 0.0), (2, 100.0)])
    assert "@ @" in dip or "@.@" in dip.replace(" ", ".")
    assert render_sparkline("empty", []) == "empty: (empty)"


def test_fmt_variants():
    text = format_table(["v"], [{"v": 0.0}, {"v": 1234.5}, {"v": 0.001}, {"v": "s"}])
    assert "0" in text and "1234" in text and "0.001" in text and "s" in text
