"""Smoke tests for the experiment harness at tiny scale.

These validate experiment structure and bookkeeping, not the paper shapes —
shape assertions (which need more simulated time) live in
``tests/integration/test_paper_shapes.py`` and in the benchmark suite.
"""

import pytest

from repro.harness import experiments as exp
from repro.harness.presets import TINY
from repro.sim.units import seconds


@pytest.fixture(autouse=True)
def fast_runs(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SECONDS", "0.4")
    exp.clear_memo()
    yield
    exp.clear_memo()


def test_registry_covers_every_figure():
    expected = {
        "fig01", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
        "fig09", "fig10", "fig12", "fig13", "fig14", "fig15", "fig16",
        "fig17", "fig18", "fig19", "fig20", "model1",
    }
    assert set(exp.EXPERIMENTS) == expected


def test_run_workload_artifacts():
    run = exp.run_workload("xpoint", TINY, write_fraction=0.5, seed=3,
                           duration_ns=seconds(0.3))
    assert run.result.ops > 0
    assert run.db.stats.get("gets") > 0
    assert run.machine.engine.now >= seconds(0.3)


def test_model1_table():
    res = exp.model_throttle(TINY)
    assert res.exp_id == "model1"
    assert len(res.rows) == 2
    assert res.rows[0]["lambda_a_kops"] == pytest.approx(2.74, abs=0.01)


def test_fig06_and_fig07_share_runs():
    exp.fig06_read_latency_90w(TINY, seed=3)
    memo_size = len(exp._memo)
    exp.fig07_write_latency_90w(TINY, seed=3)
    assert len(exp._memo) == memo_size  # reused, no new runs


def test_fig06_rows_per_device():
    res = exp.fig06_read_latency_90w(TINY, seed=3)
    assert sorted(res.column("device")) == ["pcie-flash", "sata-flash", "xpoint"]
    assert all(row["p90_us"] >= row["p50_us"] for row in res.rows)


def test_fig17_has_on_off_rows():
    res = exp.fig17_wal(TINY, seed=3)
    assert len(res.rows) == 6  # 3 devices x {on, off}
    for device in ("sata-flash", "pcie-flash", "xpoint"):
        res.row_for(device=device, wal="on")
        res.row_for(device=device, wal="off")


def test_fig20_three_configs():
    res = exp.fig20_nvm_wal(TINY, seed=3)
    assert res.column("config") == ["wal-ssd", "wal-nvm", "wal-off"]
    assert all(row["write_p90_us"] > 0 for row in res.rows)


def test_fig04_series_and_stats():
    res = exp.fig04_timeline_5w(TINY, seed=3)
    assert set(res.series) == {"sata-flash", "pcie-flash", "xpoint"}
    for row in res.rows:
        assert row["max_kops"] >= row["mean_kops"] >= 0


def test_fig08_structure():
    res = exp.fig08_l0_count_vs_size(TINY, seed=3)
    assert len(res.rows) == 12  # 3 devices x 4 sizes
    sizes = sorted({row["file_size_mb"] for row in res.rows})
    assert len(sizes) == 4


def test_fig19_gain_column():
    res = exp.fig19_dynamic_l0(TINY, seed=3)
    assert len(res.rows) == len(exp.FIG19_READ_RATIOS)
    for row in res.rows:
        assert row["default_kops"] > 0
        assert row["dynamic_kops"] > 0


def test_render_does_not_crash():
    res = exp.model_throttle(TINY)
    text = res.render()
    assert "model1" in text
