"""Tests for scaling presets."""

import pytest

from repro.errors import WorkloadError
from repro.harness.presets import (
    PAPER,
    PRESETS,
    SMALL,
    TINY,
    bench_preset,
    preset_by_name,
)


def test_registry():
    assert set(PRESETS) == {"tiny", "small", "paper"}
    assert preset_by_name("small") is SMALL
    with pytest.raises(WorkloadError):
        preset_by_name("huge")


def test_paper_preset_matches_paper_parameters():
    """The full-scale reference preset records Section III verbatim."""
    from repro.sim.units import gb, mb, seconds

    assert PAPER.value_size == 1024
    assert PAPER.duration_ns == seconds(300)
    assert PAPER.processes == 4
    assert PAPER.write_buffer_size == mb(64)
    assert PAPER.max_bytes_for_level_base == mb(256)
    assert PAPER.page_cache_bytes == gb(8)


def test_cache_ratio_preserved_across_presets():
    """Page cache stays ~8% of the dataset at every scale."""
    for preset in (SMALL, PAPER):
        ratio = preset.page_cache_bytes / preset.dataset_bytes
        assert 0.05 < ratio < 0.13, preset.name


def test_memtable_to_l1_ratio_preserved():
    """RocksDB's 64MB:256MB = 1:4 memtable:L1 shape at every scale."""
    for preset in (TINY, SMALL, PAPER):
        ratio = preset.max_bytes_for_level_base / preset.write_buffer_size
        assert ratio == pytest.approx(4.0), preset.name


def test_options_generated_from_preset():
    opts = SMALL.options()
    opts.validate()
    assert opts.write_buffer_size == SMALL.write_buffer_size
    assert opts.block_cache_bytes == SMALL.block_cache_bytes
    # RocksDB trigger defaults untouched by scaling.
    assert opts.level0_slowdown_writes_trigger == 20
    assert opts.level0_stop_writes_trigger == 36


def test_options_overrides():
    opts = TINY.options(wal_mode="off")
    assert opts.wal_mode == "off"


def test_prefill_spec():
    spec = SMALL.prefill_spec()
    assert spec.key_count == SMALL.key_count
    assert spec.value_size == SMALL.value_size


def test_bench_preset_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PRESET", "tiny")
    assert bench_preset() is TINY
    monkeypatch.delenv("REPRO_PRESET")
    assert bench_preset() is SMALL
