"""Tests for machine assembly."""

import pytest

from repro.harness.machine import Machine
from repro.sim.units import mb
from repro.storage.profiles import sata_flash_ssd, xpoint_ssd
from tests.conftest import run_op, tiny_options


def test_create_wires_components():
    machine = Machine.create(xpoint_ssd(), page_cache_bytes=mb(8), seed=3)
    assert machine.device.profile.name == "xpoint"
    assert machine.fs.device is machine.device
    assert machine.page_cache.capacity_pages == mb(8) // 4096
    assert machine.nvm_fs is None


def test_nvm_attachment():
    machine = Machine.create(xpoint_ssd(), page_cache_bytes=mb(8), with_nvm=True)
    assert machine.nvm_fs is not None
    assert machine.nvm_fs.device.profile.kind == "nvm"
    assert machine.nvm_fs.device is not machine.device


def test_open_db_runs_ops():
    machine = Machine.create(sata_flash_ssd(), page_cache_bytes=mb(4))
    db = machine.open_db(tiny_options())
    run_op(machine.engine, db.put(b"k", b"v"))
    assert run_op(machine.engine, db.get(b"k")) == b"v"


def test_custom_controller_injected():
    from repro.core.two_stage_throttle import TwoStageWriteController

    machine = Machine.create(xpoint_ssd(), page_cache_bytes=mb(4))
    opts = tiny_options()
    controller = TwoStageWriteController(machine.engine, opts)
    db = machine.open_db(opts, controller=controller)
    assert db.controller is controller


def test_seed_isolation():
    a = Machine.create(xpoint_ssd(), page_cache_bytes=mb(4), seed=1)
    b = Machine.create(xpoint_ssd(), page_cache_bytes=mb(4), seed=2)
    assert a.rng.fork("x").random() != b.rng.fork("x").random()
