"""Tests for device profiles (paper Section III's testbed)."""

import pytest

from repro.sim.units import GB
from repro.storage.profiles import (
    PROFILES,
    DeviceProfile,
    nvm_dimm,
    pcie_flash_ssd,
    profile_by_name,
    sata_flash_ssd,
    xpoint_ssd,
)


def test_profile_registry_complete():
    assert set(PROFILES) == {"sata-flash", "pcie-flash", "xpoint", "nvm", "null"}


def test_profile_by_name_resizes():
    prof = profile_by_name("xpoint", capacity_bytes=10 * GB)
    assert prof.capacity_bytes == 10 * GB


def test_profile_by_name_unknown():
    with pytest.raises(ValueError, match="unknown device profile"):
        profile_by_name("floppy")


def test_read_write_disparity_ordering():
    """Flash write >> read; XPoint near-symmetric (paper Section II)."""
    sata = sata_flash_ssd()
    xp = xpoint_ssd()
    assert sata.write_base_ns > sata.read_base_ns
    assert xp.write_base_ns <= xp.read_base_ns * 1.5


def test_latency_hierarchy_across_generations():
    """SATA flash > PCIe flash > XPoint > NVM for random reads."""
    lat = [
        sata_flash_ssd().read_base_ns,
        pcie_flash_ssd().read_base_ns,
        xpoint_ssd().read_base_ns,
        nvm_dimm().read_base_ns,
    ]
    assert lat == sorted(lat, reverse=True)
    assert lat[0] > 5 * lat[2]  # SATA an order slower than XPoint


def test_gc_only_on_flash():
    assert sata_flash_ssd().gc_interval_bytes > 0
    assert pcie_flash_ssd().gc_interval_bytes > 0
    assert xpoint_ssd().gc_interval_bytes == 0
    assert nvm_dimm().gc_interval_bytes == 0


def test_parallelism_ordering():
    assert sata_flash_ssd().channels < pcie_flash_ssd().channels


def test_with_overrides_replaces_field():
    prof = xpoint_ssd().with_overrides(channels=4)
    assert prof.channels == 4
    assert prof.name == "xpoint"


def test_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        DeviceProfile(name="x", kind="xpoint", capacity_bytes=0)
    with pytest.raises(ValueError):
        DeviceProfile(name="x", kind="mystery", capacity_bytes=GB)
    with pytest.raises(ValueError):
        DeviceProfile(name="x", kind="flash", capacity_bytes=GB, channels=0)


def test_full_duplex_assignment():
    assert not sata_flash_ssd().full_duplex  # SATA is half duplex
    assert pcie_flash_ssd().full_duplex
    assert xpoint_ssd().full_duplex
