"""Tests for the raw-device microbenchmark (Figure 1 substrate)."""

import pytest

from repro.errors import WorkloadError
from repro.sim.units import KB, seconds, us
from repro.storage.iotoolkit import RawBenchmark, RawResult, RawWorkloadConfig
from repro.storage.profiles import pcie_flash_ssd, sata_flash_ssd, xpoint_ssd

FAST_CFG = RawWorkloadConfig(
    duration_ns=seconds(0.2), submit_overhead_ns=us(2), seed=3
)


def test_config_validation():
    with pytest.raises(WorkloadError):
        RawWorkloadConfig(threads=0)
    with pytest.raises(WorkloadError):
        RawWorkloadConfig(read_fraction=1.5)
    with pytest.raises(WorkloadError):
        RawWorkloadConfig(request_bytes=0)


def test_result_counts_add_up():
    result = RawBenchmark(FAST_CFG).run_profile(xpoint_ssd())
    assert result.ops == result.reads + result.writes
    assert result.ops > 0
    assert result.read_latency.count == result.reads
    assert result.write_latency.count == result.writes


def test_mixed_ratio_roughly_half():
    result = RawBenchmark(FAST_CFG).run_profile(xpoint_ssd())
    frac = result.reads / result.ops
    assert 0.4 < frac < 0.6


def test_kops_zero_before_run():
    assert RawResult(device="x").kops == 0.0


def test_fig1_device_ordering():
    """Raw throughput: XPoint >> PCIe flash > SATA flash."""
    kops = {}
    for prof in (sata_flash_ssd(), pcie_flash_ssd(), xpoint_ssd()):
        kops[prof.name] = RawBenchmark(FAST_CFG).run_profile(prof).kops
    assert kops["xpoint"] > kops["pcie-flash"] > kops["sata-flash"]
    # Paper Figure 1: 15.7x raw speedup SATA -> XPoint; accept 10-25x.
    assert 10 < kops["xpoint"] / kops["sata-flash"] < 25


def test_fig1_absolute_calibration():
    """Raw numbers land near the paper's 26 / 408 kop/s."""
    cfg = RawWorkloadConfig(duration_ns=seconds(0.5), submit_overhead_ns=us(2), seed=3)
    sata = RawBenchmark(cfg).run_profile(sata_flash_ssd())
    xp = RawBenchmark(cfg).run_profile(xpoint_ssd())
    assert sata.kops == pytest.approx(26.0, rel=0.3)
    assert xp.kops == pytest.approx(408.0, rel=0.3)


def test_determinism():
    a = RawBenchmark(FAST_CFG).run_profile(xpoint_ssd())
    b = RawBenchmark(FAST_CFG).run_profile(xpoint_ssd())
    assert a.ops == b.ops
    assert a.read_latency.total == b.read_latency.total


def test_span_smaller_than_request_raises():
    cfg = RawWorkloadConfig(span_bytes=KB, request_bytes=4 * KB, duration_ns=seconds(0.01))
    with pytest.raises(WorkloadError):
        RawBenchmark(cfg).run_profile(xpoint_ssd())


def test_summary_structure():
    result = RawBenchmark(FAST_CFG).run_profile(sata_flash_ssd())
    summary = result.summary()
    assert summary["device"] == "sata-flash"
    assert summary["kops"] > 0
