"""Tests for the storage device queueing model."""

import pytest

from repro.errors import StorageError
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import GB, KB, MB, SEC, us
from repro.storage.device import StorageDevice
from repro.storage.profiles import (
    DeviceProfile,
    null_device,
    sata_flash_ssd,
    xpoint_ssd,
)


def flat_profile(**overrides) -> DeviceProfile:
    """A jitter-free device for exact latency assertions."""
    base = dict(
        name="flat",
        kind="xpoint",
        capacity_bytes=GB,
        read_base_ns=us(10),
        write_base_ns=us(20),
        seq_read_base_ns=us(5),
        seq_write_base_ns=us(5),
        channel_read_bw=400 * MB,
        channel_write_bw=400 * MB,
        channels=2,
        interface_read_bw=1600 * MB,
        interface_write_bw=1600 * MB,
        full_duplex=True,
        jitter_sigma=0.0,
    )
    base.update(overrides)
    return DeviceProfile(**base)


def make_device(engine, profile=None):
    return StorageDevice(engine, profile or flat_profile(), RandomStream(1))


def wait(engine, event):
    done = {}

    def proc():
        yield event
        done["t"] = engine.now

    engine.process(proc())
    engine.run()
    return done["t"]


def test_single_read_latency_exact(engine):
    dev = make_device(engine)
    t = wait(engine, dev.read(0, 4 * KB))
    # base 10us + transfer 4KB at 400MB/s = 10us
    expected = us(10) + 4 * KB * SEC // (400 * MB)
    assert t == expected


def test_write_slower_than_read(engine):
    dev = make_device(engine)
    t_r = wait(engine, dev.read(0, 4 * KB))
    engine2 = Engine()
    dev2 = make_device(engine2)
    t_w = wait(engine2, dev2.write(0, 4 * KB))
    assert t_w > t_r


def test_sequential_cheaper_than_random(engine):
    dev = make_device(engine)
    t_rand = wait(engine, dev.read(0, 4 * KB, sequential=False))
    engine2 = Engine()
    dev2 = make_device(engine2)
    t_seq = wait(engine2, dev2.read(0, 4 * KB, sequential=True))
    assert t_seq < t_rand


def test_parallel_reads_use_channels(engine):
    """Two reads on a 2-channel device overlap; a third queues."""
    dev = make_device(engine)
    events = [dev.read(0, 4 * KB) for _ in range(3)]
    finish = []

    def proc(ev):
        yield ev
        finish.append(engine.now)

    for ev in events:
        engine.process(proc(ev))
    engine.run()
    single = us(10) + 4 * KB * SEC // (400 * MB)
    link = 4 * KB * SEC // (1600 * MB)  # per-read host-link serialization
    assert finish[0] == single
    assert finish[1] == single + link  # overlapped on channel 2, link-shifted
    assert finish[2] == 2 * single  # queued behind the first on channel 1


def test_throughput_scales_with_channels():
    def run(channels):
        engine = Engine()
        dev = make_device(engine, flat_profile(channels=channels))
        for _ in range(64):
            dev.read(0, 4 * KB)
        ev = dev.flush()
        return wait(engine, ev)

    assert run(4) < run(1)


def test_out_of_range_raises(engine):
    dev = make_device(engine)
    with pytest.raises(StorageError):
        dev.read(GB - 100, 4 * KB)
    with pytest.raises(StorageError):
        dev.write(-1, 4 * KB)
    with pytest.raises(StorageError):
        dev.read(0, 0)


def test_flush_waits_for_all(engine):
    dev = make_device(engine)
    for _ in range(8):
        dev.write(0, 64 * KB)
    t = wait(engine, dev.flush())
    assert t > 0
    # After flushing, a new flush is immediate.
    engine2_t = wait(engine, dev.flush())
    assert engine2_t == t


def test_counters(engine):
    dev = make_device(engine)
    dev.read(0, 4 * KB)
    dev.write(0, 8 * KB)
    engine.run()
    assert dev.reads == 1
    assert dev.writes == 1
    assert dev.bytes_read == 4 * KB
    assert dev.bytes_written == 8 * KB
    snap = dev.snapshot()
    assert snap["reads"] == 1 and snap["bytes_written"] == 8 * KB


def test_trim_counts(engine):
    dev = make_device(engine)
    dev.trim(0, MB)
    assert dev.stats.get("trim_count") == 1
    assert dev.stats.get("bytes_trimmed") == MB


def test_gc_pauses_on_flash(engine):
    prof = sata_flash_ssd().with_overrides(jitter_sigma=0.0)
    dev = StorageDevice(engine, prof, RandomStream(1))
    # Random writes accrue 4x debt; push enough to cross the GC interval.
    for _ in range(400):
        dev.write(0, 64 * KB, sequential=False)
    engine.run()
    assert dev.gc_pauses > 0


def test_no_gc_on_xpoint(engine):
    dev = StorageDevice(engine, xpoint_ssd(), RandomStream(1))
    for _ in range(500):
        dev.write(0, 64 * KB, sequential=False)
    engine.run()
    assert dev.gc_pauses == 0


def test_read_priority_over_background_writes(engine):
    """A random read overtakes a deep queue of background writes."""
    dev = make_device(engine, flat_profile(channels=1))
    for _ in range(50):
        dev.write(0, 64 * KB, sequential=True)
    read_done = wait(engine, dev.read(0, 4 * KB))
    write_service = us(5) + 64 * KB * SEC // (400 * MB)
    # The read waits at most ~one in-service write, not the whole queue.
    assert read_done < 3 * write_service


def test_background_writes_fifo(engine):
    dev = make_device(engine, flat_profile(channels=1))
    first = dev.write(0, 64 * KB, sequential=True)
    second = dev.write(64 * KB, 64 * KB, sequential=True)
    t1 = {}

    def proc(ev, key):
        yield ev
        t1[key] = engine.now

    engine.process(proc(first, "first"))
    engine.process(proc(second, "second"))
    engine.run()
    assert t1["second"] > t1["first"]


def test_large_request_striped_across_channels(engine):
    """A 1 MB sequential read finishes ~channels-times faster than serial."""
    dev = make_device(engine, flat_profile(channels=8, interface_read_bw=100_000 * MB))
    t = wait(engine, dev.read(0, MB, sequential=True))
    serial_transfer = MB * SEC // (400 * MB)
    assert t < serial_transfer  # parallelism helped

def test_half_duplex_serializes_reads_and_writes(engine):
    prof = flat_profile(full_duplex=False, channels=4,
                        interface_read_bw=100 * MB, interface_write_bw=100 * MB)
    dev = make_device(engine, prof)
    dev.write(0, 512 * KB, sequential=True)
    t = wait(engine, dev.read(0, 4 * KB, sequential=True))
    # The read's transfer must wait for the 512 KB write transfer on the link.
    write_transfer = 512 * KB * SEC // (100 * MB)
    assert t >= write_transfer


def test_utilization_positive_after_io(engine):
    dev = make_device(engine)
    dev.read(0, 64 * KB)
    engine.run()
    assert dev.utilization(engine.now or 1) > 0


def test_null_device_instant(engine):
    dev = StorageDevice(engine, null_device(), RandomStream(1))
    t = wait(engine, dev.read(0, 4 * KB))
    assert t == 0


def test_determinism_same_seed():
    def run():
        engine = Engine()
        dev = StorageDevice(engine, sata_flash_ssd(), RandomStream(99))
        stamps = []

        def proc():
            for i in range(50):
                yield dev.read((i * 7919 * 4096) % (GB), 4 * KB)
                stamps.append(engine.now)

        engine.process(proc())
        engine.run()
        return stamps

    assert run() == run()
