"""Tests for the byte-addressable NVM log device (case study C substrate)."""

import pytest

from repro.errors import StorageError
from repro.sim.units import KB, MB, us
from repro.storage.nvm import NvmLog
from repro.storage.profiles import nvm_dimm, xpoint_ssd


def wait(engine, ev):
    out = {}

    def proc():
        yield ev
        out["t"] = engine.now

    engine.process(proc())
    engine.run()
    return out["t"]


def test_append_advances_head(engine):
    log = NvmLog(engine)
    log.append(KB)
    log.append(2 * KB)
    assert log.bytes_appended == 3 * KB


def test_append_is_fast(engine):
    """NVM appends complete in ~a microsecond, not SSD latencies."""
    log = NvmLog(engine)
    t = wait(engine, log.append(KB))
    assert t < us(5)


def test_append_requires_positive_size(engine):
    log = NvmLog(engine)
    with pytest.raises(StorageError):
        log.append(0)


def test_requires_nvm_profile(engine):
    with pytest.raises(StorageError):
        NvmLog(engine, profile=xpoint_ssd())


def test_reset_truncates(engine):
    log = NvmLog(engine)
    log.append(MB)
    log.reset()
    assert log.bytes_appended == 0


def test_wraparound_within_capacity(engine):
    log = NvmLog(engine, profile=nvm_dimm(capacity_bytes=4 * MB))
    for _ in range(12):
        wait(engine, log.append(MB))  # 12 MB through a 4 MB region
    assert log.bytes_appended >= 12 * MB
