"""Property-based tests for the device queueing model's physical invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import GB, KB, MB, SEC
from repro.storage.device import StorageDevice
from repro.storage.profiles import DeviceProfile


def flat_profile(channels=2, jitter=0.0):
    return DeviceProfile(
        name="prop",
        kind="xpoint",
        capacity_bytes=GB,
        read_base_ns=10_000,
        write_base_ns=20_000,
        seq_read_base_ns=5_000,
        seq_write_base_ns=5_000,
        channel_read_bw=400 * MB,
        channel_write_bw=400 * MB,
        channels=channels,
        interface_read_bw=1600 * MB,
        interface_write_bw=1600 * MB,
        full_duplex=True,
        jitter_sigma=jitter,
    )


@st.composite
def request_lists(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    reqs = []
    for _ in range(n):
        op = draw(st.sampled_from(["read", "write"]))
        seq = draw(st.booleans())
        nbytes = draw(st.sampled_from([4 * KB, 16 * KB, 64 * KB]))
        reqs.append((op, seq, nbytes))
    return reqs


def completion_times(reqs, channels=2):
    engine = Engine()
    dev = StorageDevice(engine, flat_profile(channels=channels), RandomStream(1))
    finishes = []

    def submit():
        events = []
        for op, seq, nbytes in reqs:
            if op == "read":
                events.append(dev.read(0, nbytes, sequential=seq))
            else:
                events.append(dev.write(0, nbytes, sequential=seq))
        yield engine.all_of(events)

    engine.process(submit())
    engine.run()
    return engine.now, dev


@settings(max_examples=40, deadline=None)
@given(reqs=request_lists())
def test_completion_bounded_by_serial_and_ideal(reqs):
    """Makespan lies between perfect parallel and fully serial service."""
    makespan, dev = completion_times(reqs, channels=2)

    def service(op, seq, nbytes):
        prof = dev.profile
        base = {
            ("read", False): prof.read_base_ns,
            ("read", True): prof.seq_read_base_ns,
            ("write", False): prof.write_base_ns,
            ("write", True): prof.seq_write_base_ns,
        }[(op, seq)]
        bw = prof.channel_read_bw if op == "read" else prof.channel_write_bw
        return base + nbytes * SEC // bw

    services = [service(*r) for r in reqs]
    total_service = sum(services)
    assert makespan <= total_service + 1  # never slower than fully serial
    # Lower bound: 2 channels at best halve the work.  Read priority lets a
    # foreground read overlap one in-service background request per channel
    # (its completion is not retroactively delayed), so allow that slack.
    slack = 2 * max(services)
    assert makespan >= total_service // 2 - slack - 1


@settings(max_examples=40, deadline=None)
@given(reqs=request_lists())
def test_byte_accounting_exact(reqs):
    _, dev = completion_times(reqs)
    expected_read = sum(n for op, _, n in reqs if op == "read")
    expected_write = sum(n for op, _, n in reqs if op == "write")
    assert dev.bytes_read == expected_read
    assert dev.bytes_written == expected_write
    assert dev.reads == sum(1 for op, _, _ in reqs if op == "read")
    assert dev.writes == sum(1 for op, _, _ in reqs if op == "write")


@settings(max_examples=30, deadline=None)
@given(reqs=request_lists(), channels=st.sampled_from([1, 2, 8]))
def test_more_channels_never_slower(reqs, channels):
    few, _ = completion_times(reqs, channels=1)
    many, _ = completion_times(reqs, channels=channels)
    assert many <= few


@settings(max_examples=30, deadline=None)
@given(reqs=request_lists())
def test_latency_histograms_complete(reqs):
    _, dev = completion_times(reqs)
    assert dev.read_latency.count == dev.reads
    assert dev.write_latency.count == dev.writes
    if dev.reads:
        assert dev.read_latency.min >= 0
