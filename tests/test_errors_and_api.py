"""Tests for the exception hierarchy, top-level API surface, and CLI."""

import pytest

import repro
from repro.errors import (
    CorruptionError,
    DBClosedError,
    DBError,
    FileExistsInFS,
    FileNotFoundInFS,
    FileSystemError,
    OptionsError,
    OutOfSpaceError,
    ReproError,
    SimulationError,
    StorageError,
    WorkloadError,
    WriteStallError,
)


def test_everything_derives_from_repro_error():
    for exc in (
        SimulationError,
        StorageError,
        FileSystemError,
        DBError,
        WorkloadError,
    ):
        assert issubclass(exc, ReproError)


def test_fs_error_subtypes():
    for exc in (FileNotFoundInFS, FileExistsInFS, OutOfSpaceError):
        assert issubclass(exc, FileSystemError)


def test_db_error_subtypes():
    for exc in (DBClosedError, CorruptionError, WriteStallError, OptionsError):
        assert issubclass(exc, DBError)


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


def test_readme_quickstart_snippet():
    """The README's quickstart code must actually run."""
    from repro import Machine, Options, xpoint_ssd
    from repro.sim import mb

    machine = Machine.create(xpoint_ssd(), page_cache_bytes=mb(8))
    db = machine.open_db(Options(write_buffer_size=mb(1), memtable_rep="hash"))
    db.run_sync(db.put(b"key", b"value"))
    assert db.run_sync(db.get(b"key")) == b"value"


def test_db_describe_report():
    from repro.sim.engine import Engine
    from tests.conftest import make_db

    engine = Engine()
    db = make_db(engine)
    db.run_sync(db.put(b"k", b"v"))
    text = db.describe()
    assert "DB status" in text
    assert "stall state: normal" in text
    assert "puts: 1" in text


class TestCli:
    def test_model1(self, capsys):
        from repro.harness.__main__ import main

        assert main(["model1", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "model1" in out and "2.7" in out

    def test_unknown_experiment_rejected(self):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_preset_rejected(self):
        from repro.errors import WorkloadError
        from repro.harness.__main__ import main

        with pytest.raises(WorkloadError):
            main(["model1", "--preset", "huge"])
