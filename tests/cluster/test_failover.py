"""Tests for leader failover, divergence truncation, and election safety."""

from repro.sim.units import ms

from tests.cluster.conftest import make_cluster, put_n, run_gen, settle


def read_key(engine, db, key):
    def reader():
        value = yield from db.get(key)
        return value

    return run_gen(engine, reader(), "read")


class TestFailover:
    def test_leader_crash_elects_new_leader(self):
        engine, cluster = make_cluster()
        put_n(engine, cluster, 0, 10)
        old = cluster.leader_id
        old_term = cluster.term
        cluster.crash_node(old)
        assert cluster.leader_id is not None
        assert cluster.leader_id != old
        assert cluster.term == old_term + 1
        results = put_n(engine, cluster, 10, 20)
        assert all(acked for _i, acked, _s in results)
        assert not cluster.violations

    def test_acked_writes_survive_failover(self):
        engine, cluster = make_cluster()
        results = put_n(engine, cluster, 0, 15, keyspace=4)
        assert all(acked for _i, acked, _s in results)
        cluster.crash_node(cluster.leader_id)
        # Every acked write is on the new leader: the last value written to
        # each key must read back.
        leader = cluster.leader_node
        for k in range(4):
            last = max(i for i in range(15) if i % 4 == k)
            assert read_key(engine, leader.db, b"k%03d" % k) == b"v%06d" % last

    def test_divergent_unacked_tail_is_truncated_on_rejoin(self):
        engine, cluster = make_cluster()
        put_n(engine, cluster, 0, 10)
        assert settle(engine, cluster, ms(50))
        old = cluster.leader_id
        # Isolate the leader: its next writes land in its own WAL (locally
        # durable) but never reach a follower — unacked, divergent-to-be.
        cluster.network.partition([old])
        results = put_n(engine, cluster, 10, 13)
        assert all(not acked for _i, acked, _s in results)
        assert len(cluster.nodes[old].log) == 13
        cluster.crash_node(old)
        cluster.network.heal()
        new_leader = cluster.leader_node
        assert new_leader is not None and len(new_leader.log) == 10
        # The new branch gets real, acked writes.
        results = put_n(engine, cluster, 13, 18)
        assert all(acked for _i, acked, _s in results)
        # The old leader rejoins: its 3-group tail diverges from the new
        # branch and must be physically truncated, never to resurrect.
        cluster.restart_node(old)
        assert len(cluster.truncated_identities) == 3
        assert settle(engine, cluster, ms(200))
        leader_tags = [g.tag for g in cluster.leader_node.log]
        for node in cluster.nodes:
            assert [g.tag for g in node.log] == leader_tags
        leader_ids = {g.identity for g in cluster.leader_node.log}
        assert not (cluster.truncated_identities & leader_ids)
        assert not cluster.violations

    def test_election_prefers_newer_term_over_longer_log(self):
        # Raft's election restriction: a crashed ex-leader's long divergent
        # unacked tail must lose to a shorter log holding newer-term acked
        # groups.
        engine, cluster = make_cluster()
        node0 = cluster.leader_id
        cluster.network.partition([node0])
        put_n(engine, cluster, 0, 5)  # 5 unacked term-1 groups on node 0
        assert len(cluster.nodes[node0].log) == 5
        cluster.crash_node(node0)
        second = cluster.leader_id
        assert second is not None
        cluster.network.heal()
        results = put_n(engine, cluster, 5, 7)  # 2 acked term-2 groups
        assert all(acked for _i, acked, _s in results)
        assert settle(engine, cluster, ms(100))
        cluster.crash_node(second)  # quorum lost: 1/3 alive
        assert cluster.leader_id is None
        cluster.restart_node(node0)  # quorum back; node 0 has the longer log
        winner = cluster.leader_id
        assert winner is not None
        assert winner != node0, "longer stale-term log must not win"
        # The acked term-2 writes survive; node 0's tail was truncated.
        assert len(cluster.truncated_identities) == 5
        assert settle(engine, cluster, ms(200))
        leader_ids = {g.identity for g in cluster.leader_node.log}
        assert not (cluster.truncated_identities & leader_ids)
        for i, acked, _seq in results:
            key = b"k%03d" % (i % 8)
            assert read_key(engine, cluster.leader_node.db, key) is not None
        assert not cluster.violations
