"""Tests for WAL shipping, quorum acks, and log convergence."""

from repro.sim.units import ms

from tests.cluster.conftest import make_cluster, put_n, run_gen, settle


class TestHappyPath:
    def test_writes_ack_and_replicate(self):
        engine, cluster = make_cluster()
        results = put_n(engine, cluster, 0, 25)
        assert all(acked for _i, acked, _s in results)
        assert cluster.commit_seq == 25
        assert settle(engine, cluster, ms(50))
        leader = cluster.leader_node
        assert len(leader.log) == 25
        for node in cluster.nodes:
            assert [g.tag for g in node.log] == [g.tag for g in leader.log]
            assert node.durable_len == len(node.log)
        assert not cluster.violations

    def test_follower_state_matches_leader(self):
        engine, cluster = make_cluster()
        put_n(engine, cluster, 0, 30, keyspace=5)
        assert settle(engine, cluster, ms(50))

        def read_all(db):
            state = {}

            def reader():
                for k in range(5):
                    key = b"k%03d" % k
                    value = yield from db.get(key)
                    state[key] = value

            run_gen(engine, reader(), "reader")
            return state

        states = [read_all(node.db) for node in cluster.nodes]
        assert states[0] == states[1] == states[2]
        assert any(v is not None for v in states[0].values())

    def test_commit_requires_quorum(self):
        # With both followers isolated, a 3-node cluster cannot commit.
        engine, cluster = make_cluster()
        cluster.network.partition([cluster.leader_id])
        results = put_n(engine, cluster, 0, 3)
        assert all(not acked for _i, acked, _s in results)
        assert cluster.commit_seq == 0
        # Heal: the shippers' retry loop catches the followers up and the
        # previously-unacked writes commit (they were never lost, only
        # unacknowledged).
        cluster.network.heal()
        assert settle(engine, cluster, ms(100))
        assert cluster.commit_seq == 3
        assert not cluster.violations

    def test_single_follower_partition_still_commits(self):
        engine, cluster = make_cluster()
        follower = next(
            n.node_id for n in cluster.nodes if n.node_id != cluster.leader_id
        )
        cluster.network.partition([follower])
        results = put_n(engine, cluster, 0, 10)
        assert all(acked for _i, acked, _s in results)  # quorum = leader + 1
        cluster.network.heal()
        assert settle(engine, cluster, ms(100))
        assert len(cluster.nodes[follower].log) == 10
        assert not cluster.violations


class TestFollowerCrash:
    def test_crashed_follower_catches_up_after_restart(self):
        engine, cluster = make_cluster()
        put_n(engine, cluster, 0, 10)
        victim = next(
            n.node_id for n in cluster.nodes if n.node_id != cluster.leader_id
        )
        cluster.crash_node(victim)
        results = put_n(engine, cluster, 10, 20)
        assert all(acked for _i, acked, _s in results)  # other follower acks
        cluster.restart_node(victim)
        assert settle(engine, cluster, ms(200))
        assert len(cluster.nodes[victim].log) == 20
        assert not cluster.violations

    def test_crash_is_node_local(self):
        # The victim's crash must not disturb the leader's in-flight work.
        engine, cluster = make_cluster()
        victim = next(
            n.node_id for n in cluster.nodes if n.node_id != cluster.leader_id
        )

        def workload():
            for i in range(20):
                if i == 7:
                    cluster.crash_node(victim)
                acked, _seq = yield from cluster.put(b"k%d" % (i % 4), b"v%d" % i)
                assert acked

        run_gen(engine, workload(), "workload")
        assert cluster.leader_node.db.stats.get("fsync_errors") == 0
        assert not cluster.violations


class TestQuorumLoss:
    def test_no_election_below_quorum(self):
        engine, cluster = make_cluster()
        put_n(engine, cluster, 0, 5)
        followers = [n.node_id for n in cluster.nodes if n.node_id != cluster.leader_id]
        cluster.crash_node(followers[0])
        cluster.crash_node(cluster.leader_id)  # 1/3 alive: no quorum
        assert cluster.leader_id is None
        results = put_n(engine, cluster, 5, 8)
        assert all(not acked for _i, acked, _s in results)
        # One restart restores quorum and triggers the deferred election.
        cluster.restart_node(followers[0])
        assert cluster.leader_id is not None
        results = put_n(engine, cluster, 8, 12)
        assert all(acked for _i, acked, _s in results)
        assert not cluster.violations


class TestTermHistory:
    def test_one_leader_per_term(self):
        engine, cluster = make_cluster()
        put_n(engine, cluster, 0, 5)
        for _round in range(3):
            old = cluster.leader_id
            cluster.crash_node(old)
            cluster.restart_node(old)
        terms = [t for t, _n in cluster.term_history]
        assert len(terms) == len(set(terms))
        assert terms == sorted(terms)
