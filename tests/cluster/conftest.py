"""Shared builders for the replication tests."""

from __future__ import annotations

from repro.cluster import Cluster, ClusterConfig
from repro.fs.filesystem import SimFileSystem
from repro.fs.page_cache import PageCache
from repro.lsm.options import HASH_REP, WAL_SYNC, Options
from repro.net import NetConfig, Network
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import kb, mb
from repro.storage.device import StorageDevice
from repro.storage.profiles import xpoint_ssd


def cluster_options() -> Options:
    return Options(
        write_buffer_size=kb(16),
        max_bytes_for_level_base=kb(64),
        target_file_size_base=kb(32),
        block_cache_bytes=kb(32),
        memtable_rep=HASH_REP,
        wal_mode=WAL_SYNC,
        paranoid_checks=True,
        name="cluster-test",
    )


def make_cluster(n=3, seed=1234, config=None, fs_factory=None):
    """A started n-node cluster on fresh xpoint machines."""
    engine = Engine()
    rng = RandomStream(seed, "cluster-test")
    fss = []
    for i in range(n):
        if fs_factory is not None:
            fss.append(fs_factory(engine, i, rng))
        else:
            device = StorageDevice(engine, xpoint_ssd(), rng=rng.fork(f"dev/{i}"))
            fss.append(SimFileSystem(engine, device, PageCache(mb(4))))
    net = Network(engine, n, rng.fork("net"), NetConfig())
    cluster = Cluster(
        engine, net, fss, cluster_options, rng.fork("cluster"), config or ClusterConfig()
    )
    cluster.start()
    return engine, cluster


def run_gen(engine, gen, name="test-op"):
    proc = engine.process(gen, name=name)
    proc.callbacks.append(lambda _ev: None)
    while not proc.done:
        nxt = engine.peek()
        assert nxt is not None, f"{name} deadlocked at t={engine.now}"
        engine.run(until=nxt)
    if proc.exception is not None:
        raise proc.exception
    return proc.value


def put_n(engine, cluster, lo, hi, keyspace=8):
    """Issue puts [lo, hi) sequentially; returns [(i, acked, seq)]."""
    results = []

    def writer():
        for i in range(lo, hi):
            acked, seq = yield from cluster.put(
                b"k%03d" % (i % keyspace), b"v%06d" % i
            )
            results.append((i, acked, seq))

    run_gen(engine, writer(), "writer")
    return results


def settle(engine, cluster, total_ns, tick_ns=1_000_000):
    """Advance virtual time until logs converge (or total_ns elapses)."""

    def waiter():
        deadline = engine.now + total_ns
        while engine.now < deadline:
            leader = cluster.leader_node
            if leader is not None and all(
                len(n.log) == len(leader.log)
                for n in cluster.nodes
                if n.active
            ):
                return True
            yield tick_ns
        return False

    return run_gen(engine, waiter(), "settle")
