"""Satellite: background-error auto-resume on a follower vs catch-up.

A follower whose WAL path throws transient I/O errors enters the
error-handler's degraded mode (transient + WAL source classifies HARD:
read-only until a resume probe succeeds).  While degraded, its applies
are rejected and the leader's shipper keeps retrying with backoff; the
cluster still commits through the other follower.  Once auto-resume
clears the episode, re-shipped groups apply and the follower converges —
no operator action, no invariant violation.
"""

from repro.faults import (
    WRITE_ERROR,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultyDevice,
    FaultyFileSystem,
)
from repro.fs.filesystem import SimFileSystem
from repro.fs.page_cache import PageCache
from repro.sim.units import mb, ms, us
from repro.storage.device import StorageDevice
from repro.storage.profiles import xpoint_ssd

from tests.cluster.conftest import make_cluster, put_n, settle

FAULTY_NODE = 2


def faulty_fs_factory(engine, i, rng):
    if i != FAULTY_NODE:
        device = StorageDevice(engine, xpoint_ssd(), rng=rng.fork(f"dev/{i}"))
        return SimFileSystem(engine, device, PageCache(mb(4)))
    # Enough consecutive write errors to exhaust the WAL sync path's
    # bounded retries (1 attempt + 3 retries) and reach the error handler.
    schedule = FaultSchedule(
        [FaultSpec(WRITE_ERROR, at_time=us(400), count=8)]
    )
    injector = FaultInjector(engine, schedule)
    device = FaultyDevice(engine, xpoint_ssd(), injector, rng.fork(f"dev/{i}"))
    return FaultyFileSystem(engine, device, PageCache(mb(4)), injector)


class TestAutoResumeCatchup:
    def test_degraded_follower_resumes_and_converges(self):
        engine, cluster = make_cluster(fs_factory=faulty_fs_factory)
        assert cluster.leader_id != FAULTY_NODE
        results = put_n(engine, cluster, 0, 40)
        # Quorum holds through the healthy follower: every write acks even
        # while the faulty node is degraded.
        assert all(acked for _i, acked, _s in results)

        follower = cluster.nodes[FAULTY_NODE]
        stats = follower.db.stats
        assert stats.get("bg_error.raised") >= 1, "faults never reached the handler"
        assert stats.get("bg_error.degraded_entries") >= 1

        assert settle(engine, cluster, ms(400))
        assert stats.get("bg_error.resume_successes") >= 1
        leader = cluster.leader_node
        assert len(follower.log) == len(leader.log)
        assert [g.tag for g in follower.log] == [g.tag for g in leader.log]
        assert follower.db.error_handler.severity == ""
        assert not cluster.violations

    def test_healthy_cluster_identical_with_inert_injector(self):
        # The same cluster with no fault specs must behave exactly like a
        # plain-filesystem cluster: the injector layers are pass-through.
        def inert_factory(engine, i, rng):
            injector = FaultInjector(engine, FaultSchedule())
            device = FaultyDevice(engine, xpoint_ssd(), injector, rng.fork(f"dev/{i}"))
            return FaultyFileSystem(engine, device, PageCache(mb(4)), injector)

        engine_a, cluster_a = make_cluster(fs_factory=inert_factory)
        engine_b, cluster_b = make_cluster()
        ra = put_n(engine_a, cluster_a, 0, 15)
        rb = put_n(engine_b, cluster_b, 0, 15)
        assert ra == rb
        assert engine_a.now == engine_b.now
