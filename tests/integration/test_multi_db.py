"""Multiple DB instances sharing one machine (the column-family pattern).

The paper's RocksDB uses column families to partition one database; here —
as documented in DESIGN.md — families are modelled as independent DB
instances.  These tests pin down that two instances on one machine share
the device and page cache but are otherwise fully isolated.
"""

import pytest

from repro.fs.filesystem import SimFileSystem
from repro.fs.page_cache import PageCache
from repro.lsm.db import DB
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import mb
from repro.storage.device import StorageDevice
from repro.storage.profiles import xpoint_ssd
from tests.conftest import run_op, tiny_options


@pytest.fixture
def machine_parts(engine):
    device = StorageDevice(engine, xpoint_ssd(), RandomStream(1))
    cache = PageCache(mb(8))
    fs_a = SimFileSystem(engine, device, cache)
    fs_b = SimFileSystem(engine, device, cache)
    return fs_a, fs_b


def test_two_instances_isolated(engine, machine_parts):
    fs_a, fs_b = machine_parts
    db_a = DB(engine, fs_a, tiny_options(name="cf-a"))
    db_b = DB(engine, fs_b, tiny_options(name="cf-b"))
    run_op(engine, db_a.put(b"k", b"from-a"))
    run_op(engine, db_b.put(b"k", b"from-b"))
    assert run_op(engine, db_a.get(b"k")) == b"from-a"
    assert run_op(engine, db_b.get(b"k")) == b"from-b"


def test_instances_share_device_bandwidth(engine, machine_parts):
    fs_a, fs_b = machine_parts
    db_a = DB(engine, fs_a, tiny_options())
    db_b = DB(engine, fs_b, tiny_options())

    def writer(db, base):
        for i in range(300):
            yield from db.put(b"%08d" % (base + i), b"v" * 256)
        yield from db.flush_all()

    pa = engine.process(writer(db_a, 0))
    pb = engine.process(writer(db_b, 10_000))
    pa.callbacks.append(lambda _e: None)
    pb.callbacks.append(lambda _e: None)
    engine.run()
    assert pa.exception is None and pb.exception is None
    device = fs_a.device
    # Both instances' flushes hit the single shared device.
    assert device.bytes_written > 2 * 300 * 256


def test_sequence_spaces_independent(engine, machine_parts):
    fs_a, fs_b = machine_parts
    db_a = DB(engine, fs_a, tiny_options())
    db_b = DB(engine, fs_b, tiny_options())
    run_op(engine, db_a.put(b"x", b"1"))
    run_op(engine, db_a.put(b"y", b"2"))
    run_op(engine, db_b.put(b"x", b"1"))
    assert db_a.versions.last_sequence == 2
    assert db_b.versions.last_sequence == 1


def test_examples_importable():
    """Every example module parses and imports cleanly."""
    import importlib.util
    import pathlib

    examples = sorted(pathlib.Path("examples").glob("*.py"))
    assert len(examples) >= 5
    for path in examples:
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), path
