"""Integration tests: the paper's qualitative findings at reduced scale.

Each test reproduces one finding's *direction* (who is faster, what grows,
what inverts) on short runs.  The benchmark suite regenerates the full
figures; these assertions are the fast regression net for the phenomena
themselves.
"""

import pytest

from repro.core.bottlenecks import near_stop_fraction
from repro.core.two_stage_throttle import TwoStageWriteController
from repro.harness.experiments import run_workload
from repro.harness.presets import TINY
from repro.sim.units import seconds
from repro.workloads.generators import BurstSchedule

SEED = 13
DUR = seconds(0.8)


def run(device, wf, **kwargs):
    kwargs.setdefault("duration_ns", DUR)
    return run_workload(device, TINY, write_fraction=wf, seed=SEED, **kwargs)


@pytest.fixture(scope="module")
def mixed_runs():
    """R/W 1:1 runs on all three devices (shared by several tests)."""
    return {
        device: run(device, 0.5)
        for device in ("sata-flash", "pcie-flash", "xpoint")
    }


class TestDeviceEvolution:
    def test_throughput_ordering_mixed(self, mixed_runs):
        """Finding #1 backdrop: XPoint > PCIe flash > SATA flash at 1:1."""
        kops = {d: r.result.kops for d, r in mixed_runs.items()}
        assert kops["xpoint"] > kops["pcie-flash"] > kops["sata-flash"]

    def test_read_latency_ordering(self, mixed_runs):
        """Figures 6/10/14: XPoint reads far shorter than SATA flash."""
        p90 = {
            d: r.result.read_latency.percentile(90) for d, r in mixed_runs.items()
        }
        assert p90["xpoint"] < p90["pcie-flash"] < p90["sata-flash"]
        assert p90["sata-flash"] > 2 * p90["xpoint"]

    def test_end_to_end_gain_smaller_than_raw(self, mixed_runs):
        """Figure 1's point: RocksDB gains much less than the raw device."""
        from repro.storage.iotoolkit import RawBenchmark, RawWorkloadConfig
        from repro.storage.profiles import sata_flash_ssd, xpoint_ssd

        raw_cfg = RawWorkloadConfig(duration_ns=seconds(0.3), submit_overhead_ns=2000)
        raw_sata = RawBenchmark(raw_cfg).run_profile(sata_flash_ssd()).kops
        raw_xp = RawBenchmark(raw_cfg).run_profile(xpoint_ssd()).kops
        kv_ratio = (
            mixed_runs["xpoint"].result.kops / mixed_runs["sata-flash"].result.kops
        )
        assert raw_xp / raw_sata > 2 * kv_ratio


class TestThrottling:
    def test_xpoint_throttles_at_high_insertion(self):
        """Finding #1: write-heavy load triggers Algorithm 1 on XPoint."""
        heavy = run("xpoint", 1.0)
        tickers = heavy.result.db_tickers
        assert tickers.get("stall.delays_hit", 0) > 0

    def test_xpoint_advantage_shrinks_with_insertion_ratio(self):
        """Figure 3: the XPoint/PCIe gap collapses as writes dominate."""
        read_gap = run("xpoint", 0.0).result.kops / run("pcie-flash", 0.0).result.kops
        write_gap = run("xpoint", 1.0).result.kops / run("pcie-flash", 1.0).result.kops
        assert write_gap < read_gap
        assert write_gap < 1.6  # converged (paper: 45 vs 41.3)

    def test_two_stage_removes_near_stop(self):
        """Figure 18: two-stage throttling lifts the near-stop floor."""
        duration = seconds(3.0)
        schedule = BurstSchedule(0.5, 1.0, period_ns=seconds(1.0), burst_ns=seconds(0.5))

        def burst_run(factory):
            art = run_workload(
                "xpoint", TINY, write_fraction=0.5, seed=SEED,
                duration_ns=duration, schedule=schedule,
                controller_factory=factory, warmup_fraction=0.05,
            )
            series = art.result.timeline.series(0, duration)
            return art, series

        original, orig_series = burst_run(None)
        twostage, ts_series = burst_run(
            lambda engine, opts: TwoStageWriteController(engine, opts)
        )
        orig_frac = near_stop_fraction(orig_series, threshold_ops=10_000)
        ts_frac = near_stop_fraction(ts_series, threshold_ops=10_000)
        assert ts_frac <= orig_frac
        # The bursts must actually have stressed the write path (either the
        # delay stages or the memtable-stop backstop engaged).
        stats = twostage.db.controller.stats
        stressed = (
            stats.get("stage1_writes")
            + stats.get("stage2_writes")
            + stats.get("stops")
        )
        assert stressed > 0


class TestLevel0:
    def test_larger_files_fewer_l0(self):
        """Figure 8 at tiny scale."""
        def avg_l0(wb_mult):
            opts = TINY.options(
                write_buffer_size=int(TINY.write_buffer_size * wb_mult)
            )
            art = run("xpoint", 0.7, options=opts)
            samples = [c for _, c in art.result.l0_file_counts]
            return sum(samples) / max(1, len(samples))

        assert avg_l0(0.5) > avg_l0(4.0)


class TestLogging:
    def test_wal_off_faster_writes(self):
        """Figure 17: disabling the WAL cuts write latency."""
        on = run("xpoint", 0.9)
        off = run("xpoint", 0.9, options=TINY.options(wal_mode="off"))
        assert (
            off.result.write_latency.percentile(90)
            < on.result.write_latency.percentile(90)
        )

    def test_nvm_wal_not_slower_than_ssd_wal(self):
        """Figure 20: NVM logging's write tail <= SSD logging's."""
        ssd = run("xpoint", 0.5)
        nvm = run("xpoint", 0.5, wal_on_nvm=True)
        assert (
            nvm.result.write_latency.percentile(90)
            <= ssd.result.write_latency.percentile(90) * 1.05
        )


class TestParallelism:
    def test_throughput_scales_with_processes(self):
        """Figure 13: more client processes, more throughput."""
        one = run("xpoint", 0.5, processes=1)
        eight = run("xpoint", 0.5, processes=8)
        assert eight.result.kops > 1.5 * one.result.kops

    def test_more_waiting_writers_on_xpoint_than_sata(self):
        """Figure 16: fast reads recycle threads into the writer queue."""
        xp = run("xpoint", 0.5, processes=16)
        sata = run("sata-flash", 0.5, processes=16)
        assert (
            xp.result.mean_waiting_writers >= sata.result.mean_waiting_writers
        )
