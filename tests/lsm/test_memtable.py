"""Tests for memtables and the memtable list."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DBError
from repro.lsm.format import KIND_DELETE, KIND_PUT
from repro.lsm.memtable import HashRep, MemTable, MemTableList, SkipListRep, make_rep
from repro.lsm.value import ValueRef


def put(seq, value=b"v"):
    return (seq, KIND_PUT, value)


def tomb(seq):
    return (seq, KIND_DELETE, None)


@pytest.mark.parametrize("rep", ["skiplist", "hash"])
class TestMemTableReps:
    def test_add_get(self, rep):
        mt = MemTable(rep=rep)
        mt.add(b"k", put(1))
        assert mt.get(b"k") == (1, KIND_PUT, b"v")
        assert mt.get(b"missing") is None

    def test_latest_wins(self, rep):
        mt = MemTable(rep=rep)
        mt.add(b"k", put(1, b"old"))
        mt.add(b"k", put(5, b"new"))
        assert mt.get(b"k")[2] == b"new"
        assert mt.entry_count == 1

    def test_tombstone_visible(self, rep):
        mt = MemTable(rep=rep)
        mt.add(b"k", put(1))
        mt.add(b"k", tomb(2))
        assert mt.get(b"k")[1] == KIND_DELETE
        assert mt.tombstone_count() == 1

    def test_sorted_items(self, rep):
        mt = MemTable(rep=rep)
        for k in (b"c", b"a", b"b"):
            mt.add(k, put(1))
        assert [k for k, _ in mt.sorted_items()] == [b"a", b"b", b"c"]

    def test_charged_bytes_grow(self, rep):
        mt = MemTable(rep=rep, entry_overhead=64)
        mt.add(b"0123456789", put(1, ValueRef(0, 1000)))
        assert mt.charged_bytes == 10 + 1000 + 64

    def test_seq_tracking(self, rep):
        mt = MemTable(rep=rep)
        mt.add(b"a", put(5))
        mt.add(b"b", put(9))
        assert mt.first_seq == 5
        assert mt.last_seq == 9

    def test_immutable_rejects_writes(self, rep):
        mt = MemTable(rep=rep)
        mt.add(b"a", put(1))
        mt.mark_immutable()
        with pytest.raises(DBError):
            mt.add(b"b", put(2))

    def test_non_bytes_key_rejected(self, rep):
        mt = MemTable(rep=rep)
        with pytest.raises(DBError):
            mt.add("string-key", put(1))


def test_make_rep_dispatch():
    assert isinstance(make_rep("skiplist"), SkipListRep)
    assert isinstance(make_rep("hash"), HashRep)
    with pytest.raises(DBError):
        make_rep("btree")


@given(
    ops=st.lists(
        st.tuples(st.binary(min_size=1, max_size=6), st.booleans()),
        min_size=1,
        max_size=200,
    )
)
def test_reps_agree(ops):
    """Skiplist and hash reps produce identical visible state."""
    sl = MemTable(rep="skiplist")
    hs = MemTable(rep="hash")
    for seq, (key, is_put) in enumerate(ops, start=1):
        entry = put(seq, b"x") if is_put else tomb(seq)
        sl.add(key, entry)
        hs.add(key, entry)
    assert list(sl.sorted_items()) == list(hs.sorted_items())
    assert sl.entry_count == hs.entry_count
    assert sl.charged_bytes == hs.charged_bytes


class TestMemTableList:
    def make(self):
        counter = [0]

        def factory():
            counter[0] += 1
            return MemTable(rep="hash")

        return MemTableList(factory), counter

    def test_switch_seals_and_allocates(self):
        ml, counter = self.make()
        ml.mutable.add(b"a", put(1))
        sealed = ml.switch()
        assert sealed.immutable
        assert sealed.get(b"a") is not None
        assert not ml.mutable.immutable
        assert ml.count == 2
        assert counter[0] == 2

    def test_lookup_order_newest_first(self):
        ml, _ = self.make()
        ml.mutable.add(b"k", put(1, b"v1"))
        ml.switch()
        ml.mutable.add(b"k", put(2, b"v2"))
        assert ml.lookup(b"k")[2] == b"v2"

    def test_lookup_falls_back_to_immutables(self):
        ml, _ = self.make()
        ml.mutable.add(b"old", put(1, b"v1"))
        ml.switch()
        assert ml.lookup(b"old")[2] == b"v1"
        assert ml.lookup(b"none") is None

    def test_immutable_lookup_prefers_newest_immutable(self):
        ml, _ = self.make()
        ml.mutable.add(b"k", put(1, b"first"))
        ml.switch()
        ml.mutable.add(b"k", put(2, b"second"))
        ml.switch()
        assert ml.lookup(b"k")[2] == b"second"

    def test_pop_oldest(self):
        ml, _ = self.make()
        ml.mutable.add(b"a", put(1))
        first = ml.switch()
        ml.mutable.add(b"b", put(2))
        second = ml.switch()
        assert ml.pop_oldest_immutable() is first
        assert ml.pop_oldest_immutable() is second
        with pytest.raises(DBError):
            ml.pop_oldest_immutable()

    def test_tables_newest_first(self):
        ml, _ = self.make()
        sealed = ml.switch()
        tables = ml.tables_newest_first()
        assert tables[0] is ml.mutable
        assert tables[1] is sealed
