"""Tests for version management: levels, edits, refcounts, manifest."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DBError
from repro.lsm.format import KIND_PUT
from repro.lsm.sst import SSTBuilder
from repro.lsm.version import FileMetadata, Version, VersionEdit, VersionSet
from repro.lsm.value import ValueRef
from tests.conftest import make_fs, tiny_options


def make_sst(number, start, count, stride=1):
    b = SSTBuilder(number, 1024, 0)
    for i in range(start, start + count * stride, stride):
        b.add(b"%08d" % i, (number * 100000 + i, KIND_PUT, ValueRef(i, 32)))
    return b.finish()


def make_vs(engine):
    fs = make_fs(engine)
    return VersionSet(fs, tiny_options()), fs


def install(vs, fs, level, sst):
    f = fs.install_synced(f"sst/{sst.number:06d}.sst", sst.file_bytes)
    f.payload = sst
    meta = FileMetadata(sst.number, sst, f, level)
    vs.apply(VersionEdit().add_file(level, meta))
    return meta


class TestVersionQueries:
    def test_l0_newest_first(self, engine):
        vs, fs = make_vs(engine)
        first = install(vs, fs, 0, make_sst(vs.new_file_number(), 0, 10))
        second = install(vs, fs, 0, make_sst(vs.new_file_number(), 5, 10))
        l0 = vs.current.level0_files()
        assert [m.number for m in l0] == [second.number, first.number]

    def test_file_for_key_binary_search(self, engine):
        vs, fs = make_vs(engine)
        a = install(vs, fs, 1, make_sst(vs.new_file_number(), 0, 10))
        b = install(vs, fs, 1, make_sst(vs.new_file_number(), 100, 10))
        v = vs.current
        assert v.file_for_key(1, b"%08d" % 5) is a
        assert v.file_for_key(1, b"%08d" % 105) is b
        assert v.file_for_key(1, b"%08d" % 50) is None  # gap
        assert v.file_for_key(1, b"%08d" % 99999999) is None

    def test_overlapping_files_l1(self, engine):
        vs, fs = make_vs(engine)
        a = install(vs, fs, 1, make_sst(vs.new_file_number(), 0, 10))
        b = install(vs, fs, 1, make_sst(vs.new_file_number(), 20, 10))
        c = install(vs, fs, 1, make_sst(vs.new_file_number(), 40, 10))
        v = vs.current
        hit = v.overlapping_files(1, b"%08d" % 5, b"%08d" % 25)
        assert [m.number for m in hit] == [a.number, b.number]
        assert v.overlapping_files(1, b"%08d" % 11, b"%08d" % 19) == []
        assert [m.number for m in v.overlapping_files(1, b"%08d" % 0, b"%08d" % 99)] == [
            a.number, b.number, c.number
        ]

    def test_level_bytes_and_counts(self, engine):
        vs, fs = make_vs(engine)
        sst = make_sst(vs.new_file_number(), 0, 10)
        install(vs, fs, 2, sst)
        v = vs.current
        assert v.level_bytes(2) == sst.file_bytes
        assert v.num_files(2) == 1
        assert v.num_files() == 1
        assert "L2:1" in v.describe()

    def test_invariant_overlap_rejected(self, engine):
        vs, fs = make_vs(engine)
        install(vs, fs, 1, make_sst(vs.new_file_number(), 0, 10))
        overlapping = make_sst(vs.new_file_number(), 5, 10)
        f = fs.install_synced("sst/overlap.sst", overlapping.file_bytes)
        meta = FileMetadata(overlapping.number, overlapping, f, 1)
        with pytest.raises(DBError, match="overlap"):
            vs.apply(VersionEdit().add_file(1, meta))


class TestLifetimes:
    def test_deleted_file_reclaimed_when_unreferenced(self, engine):
        vs, fs = make_vs(engine)
        meta = install(vs, fs, 1, make_sst(vs.new_file_number(), 0, 10))
        path = meta.file.path
        vs.apply(VersionEdit().delete_file(1, meta.number))
        assert not fs.exists(path)
        assert vs.stats.get("files_reclaimed") == 1

    def test_reader_reference_defers_reclaim(self, engine):
        vs, fs = make_vs(engine)
        meta = install(vs, fs, 1, make_sst(vs.new_file_number(), 0, 10))
        path = meta.file.path
        read_version = vs.ref_current()
        vs.apply(VersionEdit().delete_file(1, meta.number))
        assert fs.exists(path)  # reader still holds the old version
        vs.unref(read_version)
        assert not fs.exists(path)

    def test_unref_below_zero_rejected(self, engine):
        vs, _ = make_vs(engine)
        v = vs.ref_current()
        vs.unref(v)
        with pytest.raises(DBError):
            vs.unref(v)

    def test_on_file_dead_callback(self, engine):
        dead = []
        fs = make_fs(engine)
        vs = VersionSet(fs, tiny_options(), on_file_dead=lambda m: dead.append(m.number))
        meta = install(vs, fs, 1, make_sst(vs.new_file_number(), 0, 10))
        vs.apply(VersionEdit().delete_file(1, meta.number))
        assert dead == [meta.number]

    def test_duplicate_file_number_rejected(self, engine):
        vs, fs = make_vs(engine)
        sst = make_sst(7, 0, 10)
        install(vs, fs, 1, sst)
        other = make_sst(7, 100, 10)
        f = fs.install_synced("sst/dup.sst", other.file_bytes)
        with pytest.raises(DBError, match="duplicate"):
            vs.apply(VersionEdit().add_file(2, FileMetadata(7, other, f, 2)))


class TestScoresAndRecovery:
    def test_compaction_score_l0_by_count(self, engine):
        vs, fs = make_vs(engine)
        for i in range(2):
            install(vs, fs, 0, make_sst(vs.new_file_number(), i * 100, 10))
        # trigger is 4 (RocksDB default) => score 0.5 at 2 files
        assert vs.compaction_score(0) == pytest.approx(0.5)

    def test_compaction_score_l1_by_bytes(self, engine):
        vs, fs = make_vs(engine)
        sst = make_sst(vs.new_file_number(), 0, 2000)
        install(vs, fs, 1, sst)
        expected = sst.file_bytes / vs.options.max_bytes_for_level(1)
        assert vs.compaction_score(1) == pytest.approx(expected)

    def test_pending_compaction_bytes(self, engine):
        vs, fs = make_vs(engine)
        assert vs.pending_compaction_bytes() == 0
        for i in range(6):  # 2 above the trigger of 4
            install(vs, fs, 0, make_sst(vs.new_file_number(), i * 100, 10))
        assert vs.pending_compaction_bytes() > 0

    def test_recover_replays_manifest(self, engine):
        vs, fs = make_vs(engine)
        keep = install(vs, fs, 1, make_sst(vs.new_file_number(), 0, 10))
        dead = install(vs, fs, 2, make_sst(vs.new_file_number(), 100, 10))

        def log_all():
            # Persist both edits to the manifest, then a delete edit.
            yield from vs.log_edit(VersionEdit().add_file(1, keep))
            yield from vs.log_edit(VersionEdit().add_file(2, dead))
            edit = VersionEdit().delete_file(2, dead.number)
            vs.apply(edit)
            yield from vs.log_edit(edit)

        p = engine.process(log_all())
        engine.run()
        assert p.exception is None

        recovered = VersionSet.recover(fs, tiny_options())
        assert recovered.current.num_files(1) == 1
        assert recovered.current.num_files(2) == 0
        assert recovered.next_file_number > keep.number
        assert recovered.last_sequence > 0


@given(
    ranges=st.lists(
        st.tuples(st.integers(0, 500), st.integers(1, 40)), min_size=1, max_size=20
    )
)
def test_overlapping_files_matches_bruteforce(ranges):
    """Property: binary-search overlap query equals the O(n) scan."""
    from repro.sim.engine import Engine

    engine = Engine()
    fs = make_fs(engine)
    vs = VersionSet(fs, tiny_options())
    # Build disjoint L1 files from the (start, len) ranges.
    cursor = 0
    metas = []
    for start, length in ranges:
        lo = cursor + start
        cursor = lo + length + 1
        sst = make_sst(vs.new_file_number(), lo, length)
        metas.append(install(vs, fs, 1, sst))
    v = vs.current
    for probe_lo in range(0, cursor, max(1, cursor // 10)):
        probe_hi = probe_lo + 25
        lo_key, hi_key = b"%08d" % probe_lo, b"%08d" % probe_hi
        expected = [m for m in v.levels[1] if m.sst.overlaps(lo_key, hi_key)]
        assert v.overlapping_files(1, lo_key, hi_key) == expected
