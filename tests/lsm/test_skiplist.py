"""Tests for the skiplist memtable representation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lsm.skiplist import MAX_HEIGHT, SkipList
from repro.sim.rng import RandomStream


def make_list(seed=1):
    return SkipList(RandomStream(seed, "sl"))


def test_empty():
    sl = make_list()
    assert len(sl) == 0
    assert sl.get(b"a") is None
    assert b"a" not in sl
    assert sl.first_key() is None
    assert sl.last_key() is None


def test_insert_and_get():
    sl = make_list()
    assert sl.insert(b"k1", 1)
    assert sl.get(b"k1") == 1
    assert b"k1" in sl
    assert len(sl) == 1


def test_replace_keeps_count():
    sl = make_list()
    assert sl.insert(b"k", "old")
    assert not sl.insert(b"k", "new")
    assert sl.get(b"k") == "new"
    assert len(sl) == 1


def test_iteration_sorted():
    sl = make_list()
    for k in (b"m", b"a", b"z", b"c"):
        sl.insert(k, k)
    assert [k for k, _ in sl] == [b"a", b"c", b"m", b"z"]
    assert sl.first_key() == b"a"
    assert sl.last_key() == b"z"


def test_seek():
    sl = make_list()
    for i in range(0, 100, 10):
        sl.insert(b"%03d" % i, i)
    assert [v for _, v in sl.seek(b"035")] == [40, 50, 60, 70, 80, 90]
    assert [v for _, v in sl.seek(b"040")] == [40, 50, 60, 70, 80, 90]
    assert list(sl.seek(b"999")) == []


def test_get_absent_between_keys():
    sl = make_list()
    sl.insert(b"a", 1)
    sl.insert(b"c", 3)
    assert sl.get(b"b") is None


@given(
    keys=st.lists(st.binary(min_size=1, max_size=12), min_size=1, max_size=300),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_matches_dict_model(keys, seed):
    """Skiplist behaves exactly like a dict + sorted() reference."""
    sl = SkipList(RandomStream(seed, "prop"))
    model = {}
    for i, key in enumerate(keys):
        sl.insert(key, i)
        model[key] = i
    assert len(sl) == len(model)
    assert [k for k, _ in sl] == sorted(model)
    for key, value in model.items():
        assert sl.get(key) == value
    assert sl.get(b"\xff" * 20) is None


@given(seed=st.integers(min_value=0, max_value=10_000))
def test_height_distribution_bounded(seed):
    sl = SkipList(RandomStream(seed, "h"))
    for i in range(200):
        sl.insert(b"%05d" % i, i)
    assert 1 <= sl._height <= MAX_HEIGHT


def test_large_sorted_insert_order_preserved():
    sl = make_list()
    for i in range(2000):
        sl.insert(b"%08d" % i, i)
    assert len(sl) == 2000
    items = list(sl)
    assert items[0][0] == b"%08d" % 0
    assert items[-1][0] == b"%08d" % 1999
    # spot-check ordering invariant
    keys = [k for k, _ in items]
    assert keys == sorted(keys)


def test_reverse_insert_order():
    sl = make_list()
    for i in reversed(range(500)):
        sl.insert(b"%05d" % i, i)
    keys = [k for k, _ in sl]
    assert keys == sorted(keys)
    assert sl.get(b"%05d" % 250) == 250
