"""Focused tests for flush jobs, the compaction picker and compaction jobs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DBError
from repro.lsm.compaction import Compaction, CompactionJob, CompactionPicker
from repro.lsm.db import DB
from repro.lsm.flush import FlushJob
from repro.lsm.format import KIND_DELETE, KIND_PUT
from repro.lsm.memtable import MemTable
from repro.lsm.sst import SSTBuilder
from repro.lsm.value import ValueRef
from repro.lsm.version import FileMetadata, VersionEdit
from repro.sim.engine import Engine
from repro.sim.units import kb
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_db, run_op, tiny_options


def key(i):
    return b"%010d" % i


def sealed_memtable(n, start=0, seq_base=0):
    mt = MemTable(rep="hash")
    for i in range(start, start + n):
        mt.add(key(i), (seq_base + i + 1, KIND_PUT, ValueRef(i, 64)))
    mt.mark_immutable()
    return mt


class TestFlushJob:
    def test_flush_installs_l0_file(self, engine):
        db = make_db(engine)
        mt = sealed_memtable(100)
        meta = run_op(engine, FlushJob(db, mt).run())
        assert meta is not None
        assert db.versions.current.level0_files()[0] is meta
        assert meta.sst.entry_count == 100
        assert db.fs.exists(meta.file.path)
        assert meta.file.synced_size == meta.file.size
        assert db.stats.get("flush.count") == 1

    def test_flush_mutable_rejected(self, engine):
        db = make_db(engine)
        mt = MemTable(rep="hash")
        mt.add(key(1), (1, KIND_PUT, b"v"))
        with pytest.raises(DBError):
            run_op(engine, FlushJob(db, mt).run())

    def test_flush_empty_returns_none(self, engine):
        db = make_db(engine)
        mt = MemTable(rep="hash")
        mt.mark_immutable()
        assert run_op(engine, FlushJob(db, mt).run()) is None

    def test_flush_takes_simulated_time_on_real_device(self):
        engine = Engine()
        db = make_db(engine, profile=xpoint_ssd())
        mt = sealed_memtable(500)
        run_op(engine, FlushJob(db, mt).run())
        assert engine.now > 0
        assert db.fs.device.bytes_written > 0

    def test_manifest_logged(self, engine):
        db = make_db(engine)
        run_op(engine, FlushJob(db, sealed_memtable(10)).run())
        assert len(db.versions.manifest.records) == 1


def install_file(db, level, start, count, seq_base=0, tombstone_every=0):
    number = db.versions.new_file_number()
    builder = SSTBuilder(number, db.options.block_size, 0)
    for i in range(start, start + count):
        if tombstone_every and i % tombstone_every == 0:
            builder.add(key(i), (seq_base + i + 1, KIND_DELETE, None))
        else:
            builder.add(key(i), (seq_base + i + 1, KIND_PUT, ValueRef(i, 64)))
    sst = builder.finish()
    f = db.fs.install_synced(f"sst/{number:06d}.sst", sst.file_bytes)
    f.payload = sst
    meta = FileMetadata(number, sst, f, level)
    db.versions.apply(VersionEdit().add_file(level, meta))
    return meta


class TestPicker:
    def test_no_compaction_when_under_triggers(self, engine):
        db = make_db(engine)
        install_file(db, 0, 0, 10)
        assert CompactionPicker(db.options).pick(db.versions) is None

    def test_l0_picked_at_trigger(self, engine):
        db = make_db(engine)
        for i in range(4):  # trigger = 4
            install_file(db, 0, i * 5, 10, seq_base=1000 * i)
        c = CompactionPicker(db.options).pick(db.versions)
        assert c is not None
        assert c.level == 0 and c.output_level == 1
        assert len(c.inputs_upper) == 4
        assert all(f.being_compacted for f in c.all_inputs)

    def test_l0_includes_overlapping_l1(self, engine):
        db = make_db(engine)
        l1 = install_file(db, 1, 0, 50)
        for i in range(4):
            install_file(db, 0, i * 5, 10, seq_base=1000 * (i + 1))
        c = CompactionPicker(db.options).pick(db.versions)
        assert l1 in c.inputs_lower

    def test_only_one_l0_compaction_at_a_time(self, engine):
        db = make_db(engine)
        for i in range(4):
            install_file(db, 0, i * 5, 10, seq_base=1000 * i)
        picker = CompactionPicker(db.options)
        first = picker.pick(db.versions)
        assert first is not None
        assert picker.pick(db.versions) is None  # inputs busy

    def test_size_triggered_level_compaction(self, engine):
        db = make_db(engine, options=tiny_options(max_bytes_for_level_base=kb(4)))
        install_file(db, 1, 0, 200)  # ~16 KB >> 4 KB target
        c = CompactionPicker(db.options).pick(db.versions)
        assert c is not None
        assert c.level == 1 and c.output_level == 2

    def test_scores_sorted_desc(self, engine):
        db = make_db(engine, options=tiny_options(max_bytes_for_level_base=kb(4)))
        install_file(db, 1, 0, 200)
        scores = CompactionPicker(db.options).scores(db.versions)
        values = [s for s, _ in scores]
        assert values == sorted(values, reverse=True)


class TestCompactionJob:
    def run_l0_compaction(self, engine, db):
        c = CompactionPicker(db.options).pick(db.versions)
        assert c is not None
        new_files = run_op(engine, CompactionJob(db, c).run())
        return c, new_files

    def test_merge_preserves_newest(self, engine):
        db = make_db(engine)
        # Same key range in all L0 files; later files carry newer seqs.
        for gen in range(4):
            install_file(db, 0, 0, 50, seq_base=1000 * (gen + 1))
        _, new_files = self.run_l0_compaction(engine, db)
        merged = {k: e for meta in new_files for k, e in meta.sst.items()}
        assert len(merged) == 50
        for k, entry in merged.items():
            assert entry[0] > 3000  # only the newest generation survived

    def test_inputs_deleted_after_compaction(self, engine):
        db = make_db(engine)
        metas = [install_file(db, 0, i * 5, 10, seq_base=100 * i) for i in range(4)]
        self.run_l0_compaction(engine, db)
        for meta in metas:
            assert not db.fs.exists(meta.file.path)
        assert db.versions.current.num_files(0) == 0
        assert db.versions.current.num_files(1) >= 1

    def test_tombstones_dropped_at_bottom_only(self, engine):
        db = make_db(engine)
        for gen in range(4):
            install_file(db, 0, 0, 30, seq_base=1000 * (gen + 1), tombstone_every=3)
        _, new_files = self.run_l0_compaction(engine, db)
        kinds = [e[1] for meta in new_files for _, e in meta.sst.items()]
        assert KIND_DELETE not in kinds  # L1 is bottommost here

    def test_tombstones_kept_when_deeper_data_exists(self, engine):
        db = make_db(engine)
        install_file(db, 2, 0, 30, seq_base=1)  # deeper data overlaps
        for gen in range(4):
            install_file(db, 0, 0, 30, seq_base=1000 * (gen + 1), tombstone_every=3)
        _, new_files = self.run_l0_compaction(engine, db)
        kinds = [e[1] for meta in new_files for _, e in meta.sst.items()]
        assert KIND_DELETE in kinds

    def test_outputs_respect_target_file_size(self, engine):
        db = make_db(engine, options=tiny_options(target_file_size_base=kb(2)))
        for gen in range(4):
            install_file(db, 0, gen * 40, 40, seq_base=1000 * gen)
        _, new_files = self.run_l0_compaction(engine, db)
        assert len(new_files) > 1
        for meta in new_files[:-1]:
            assert meta.sst.file_bytes == pytest.approx(kb(2), rel=0.5)

    def test_being_compacted_cleared(self, engine):
        db = make_db(engine)
        for i in range(4):
            install_file(db, 0, i * 5, 10, seq_base=100 * i)
        c, _ = self.run_l0_compaction(engine, db)
        assert all(not f.being_compacted for f in db.versions.current.all_files())

    def test_compaction_does_io_on_real_device(self):
        engine = Engine()
        db = make_db(engine, profile=xpoint_ssd())
        for gen in range(4):
            install_file(db, 0, 0, 200, seq_base=1000 * gen)
        t0 = engine.now
        self.run_l0_compaction(engine, db)
        assert engine.now > t0
        assert db.fs.device.bytes_written > 0
        assert db.stats.get("compaction.count") == 1


@settings(max_examples=10, deadline=None)
@given(
    generations=st.lists(
        st.sets(st.integers(min_value=0, max_value=80), min_size=1, max_size=40),
        min_size=4,
        max_size=4,
    )
)
def test_compaction_equals_dict_merge(generations):
    """Property: compacting N overlapping runs == newest-wins dict merge."""
    engine = Engine()
    db = make_db(engine)
    model = {}
    for gen, keys in enumerate(generations):
        number = db.versions.new_file_number()
        builder = SSTBuilder(number, db.options.block_size, 0)
        for i in sorted(keys):
            entry = (gen * 1000 + i + 1, KIND_PUT, ValueRef(gen * 1000 + i, 32))
            builder.add(key(i), entry)
            model[key(i)] = entry
        sst = builder.finish()
        f = db.fs.install_synced(f"sst/{number:06d}.sst", sst.file_bytes)
        f.payload = sst
        db.versions.apply(
            VersionEdit().add_file(0, FileMetadata(number, sst, f, 0))
        )
    c = CompactionPicker(db.options).pick(db.versions)
    new_files = run_op(engine, CompactionJob(db, c).run())
    merged = {k: e for meta in new_files for k, e in meta.sst.items()}
    assert merged == model
