"""Tests for Algorithm 2: the pipelined write queue."""

import pytest

from repro.errors import DBError
from repro.lsm.pipelined_write import (
    ROLE_LEADER,
    ROLE_MEMBER,
    WriteGroup,
    WriteQueue,
    Writer,
)
from repro.sim.units import KB, MB


def make_writer(engine, nbytes=1024):
    return Writer([(b"k", (1, 1, b"v"))], nbytes, engine.event())


def make_queue(engine, max_group=1 * MB, pipelined=True):
    return WriteQueue(engine, max_group, pipelined)


def test_first_joiner_is_leader(engine):
    q = make_queue(engine)
    w = make_writer(engine)
    assert q.join(w) is True
    assert q.waiting_count == 0


def test_subsequent_joiners_wait(engine):
    q = make_queue(engine)
    q.join(make_writer(engine))
    w2 = make_writer(engine)
    assert q.join(w2) is False
    assert q.waiting_count == 1


def test_form_group_drains_waiters(engine):
    q = make_queue(engine)
    leader = make_writer(engine)
    q.join(leader)
    followers = [make_writer(engine) for _ in range(3)]
    for w in followers:
        q.join(w)
    group = q.form_group(leader)
    assert len(group) == 4
    assert group.total_bytes == 4 * 1024
    assert q.waiting_count == 0
    assert all(w.group is group for w in [leader] + followers)


def test_group_size_cap(engine):
    q = make_queue(engine, max_group=2 * KB)
    leader = make_writer(engine, nbytes=KB)
    q.join(leader)
    for _ in range(5):
        q.join(make_writer(engine, nbytes=KB))
    group = q.form_group(leader)
    # Cap checked before adding: the group stops once it reaches 2 KB.
    assert group.total_bytes == 2 * KB
    assert len(group) == 2
    assert q.waiting_count == 4


def test_wal_phase_wakes_members(engine):
    q = make_queue(engine)
    leader = make_writer(engine)
    q.join(leader)
    member = make_writer(engine)
    q.join(member)
    group = q.form_group(leader)
    q.wal_phase_done(group)
    assert member.event.triggered
    assert member.event.value == ROLE_MEMBER


def test_pipelined_promotes_next_leader_at_wal_done(engine):
    q = make_queue(engine, pipelined=True)
    leader = make_writer(engine)
    q.join(leader)
    group = q.form_group(leader)  # group of one
    late = make_writer(engine)
    q.join(late)
    q.wal_phase_done(group)
    assert late.event.triggered
    assert late.event.value == ROLE_LEADER


def test_non_pipelined_promotes_after_members_finish(engine):
    q = make_queue(engine, pipelined=False)
    leader = make_writer(engine)
    q.join(leader)
    group = q.form_group(leader)
    late = make_writer(engine)
    q.join(late)
    q.wal_phase_done(group)
    assert not late.event.triggered  # still waiting for memtable phase
    q.member_done(group)
    assert late.event.triggered
    assert late.event.value == ROLE_LEADER


def test_leadership_clears_when_queue_empty(engine):
    q = make_queue(engine)
    leader = make_writer(engine)
    q.join(leader)
    group = q.form_group(leader)
    q.wal_phase_done(group)
    # New writer immediately becomes leader again.
    w = make_writer(engine)
    assert q.join(w) is True


def test_member_done_underflow_rejected(engine):
    q = make_queue(engine)
    leader = make_writer(engine)
    q.join(leader)
    group = q.form_group(leader)
    q.member_done(group)
    with pytest.raises(DBError):
        q.member_done(group)


def test_group_accounting(engine):
    q = make_queue(engine)
    leader = make_writer(engine)
    q.join(leader)
    q.join(make_writer(engine))
    q.form_group(leader)
    assert q.groups_formed == 1
    assert q.writers_grouped == 2


def test_all_records_concatenates_in_queue_order(engine):
    leader = Writer([(b"a", (1, 1, b"x"))], 10, engine.event())
    group = WriteGroup(leader)
    group.add(Writer([(b"b", (2, 1, b"y"))], 10, engine.event()))
    assert [k for k, _ in group.all_records()] == [b"a", b"b"]


def test_waiting_gauge_tracks_queue_length(engine):
    q = make_queue(engine)
    leader = make_writer(engine)
    q.join(leader)

    def filler():
        yield 100
        for _ in range(5):
            q.join(make_writer(engine))
        yield 100
        q.form_group(leader)

    engine.process(filler())
    engine.run()
    assert q.waiting_gauge.max_value == 5
    assert q.mean_waiting() > 0


def test_invalid_group_bytes(engine):
    with pytest.raises(DBError):
        WriteQueue(engine, 0, True)
