"""Tests for Options validation and derived values."""

import pytest

from repro.errors import OptionsError
from repro.lsm.options import Options
from repro.sim.units import MB, mb


def test_defaults_match_rocksdb_517():
    """The defaults the paper relies on (Section IV-A)."""
    opts = Options()
    opts.validate()
    assert opts.write_buffer_size == 64 * MB
    assert opts.max_write_buffer_number == 2
    assert opts.level0_file_num_compaction_trigger == 4
    assert opts.level0_slowdown_writes_trigger == 20
    assert opts.level0_stop_writes_trigger == 36
    assert opts.bloom_bits_per_key == 0  # no filter by default
    assert opts.refill_interval_ns == 1_024_000  # 1024 us
    assert opts.delayed_write_rate_dec == 0.8
    assert opts.delayed_write_rate_inc == 1.25
    assert opts.enable_pipelined_write


def test_level_targets_multiply():
    opts = Options(max_bytes_for_level_base=mb(256), max_bytes_for_level_multiplier=10)
    assert opts.max_bytes_for_level(1) == mb(256)
    assert opts.max_bytes_for_level(2) == mb(2560)
    assert opts.max_bytes_for_level(3) == mb(25600)
    with pytest.raises(OptionsError):
        opts.max_bytes_for_level(0)


def test_target_file_size():
    opts = Options(target_file_size_base=mb(64), target_file_size_multiplier=2)
    assert opts.target_file_size(1) == mb(64)
    assert opts.target_file_size(3) == mb(256)


def test_copy_overrides_and_validates():
    opts = Options()
    smaller = opts.copy(write_buffer_size=mb(4))
    assert smaller.write_buffer_size == mb(4)
    assert opts.write_buffer_size == 64 * MB  # original untouched
    with pytest.raises(OptionsError):
        opts.copy(write_buffer_size=-1)


@pytest.mark.parametrize(
    "bad",
    [
        dict(write_buffer_size=0),
        dict(max_write_buffer_number=0),
        dict(memtable_rep="btree"),
        dict(num_levels=1),
        dict(level0_file_num_compaction_trigger=0),
        dict(level0_slowdown_writes_trigger=50),  # > stop trigger
        dict(max_bytes_for_level_multiplier=1.0),
        dict(block_size=0),
        dict(bloom_bits_per_key=-1),
        dict(wal_mode="paper"),
        dict(delayed_write_rate=0),
        dict(delayed_write_rate_dec=1.0),
        dict(delayed_write_rate_inc=1.0),
        dict(max_background_compactions=0),
    ],
)
def test_invalid_options_rejected(bad):
    with pytest.raises(OptionsError):
        Options(**bad).validate()


def test_trigger_ordering_enforced():
    with pytest.raises(OptionsError):
        Options(
            level0_file_num_compaction_trigger=10,
            level0_slowdown_writes_trigger=5,
        ).validate()
