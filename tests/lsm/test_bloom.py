"""Tests for the bloom filter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DBError
from repro.lsm.bloom import BloomFilter


def test_no_false_negatives_basic():
    keys = [b"%04d" % i for i in range(100)]
    bloom = BloomFilter(keys, bits_per_key=10)
    assert all(bloom.may_contain(k) for k in keys)


def test_rejects_nonpositive_bits():
    with pytest.raises(DBError):
        BloomFilter([b"a"], bits_per_key=0)


def test_false_positive_rate_reasonable():
    keys = [b"in-%06d" % i for i in range(2000)]
    bloom = BloomFilter(keys, bits_per_key=10)
    probes = [b"out-%06d" % i for i in range(2000)]
    fp = sum(bloom.may_contain(p) for p in probes)
    # Theoretical ~1% at 10 bits/key; allow generous slack.
    assert fp / len(probes) < 0.05


def test_more_bits_fewer_false_positives():
    keys = [b"in-%06d" % i for i in range(1000)]
    probes = [b"out-%06d" % i for i in range(3000)]

    def fp_rate(bits):
        bloom = BloomFilter(keys, bits_per_key=bits)
        return sum(bloom.may_contain(p) for p in probes) / len(probes)

    assert fp_rate(16) <= fp_rate(4)


def test_empty_filter_rejects_everything_possible():
    bloom = BloomFilter([], bits_per_key=10)
    # With no keys set, any probe may be rejected (no false negatives apply).
    assert bloom.key_count == 0


def test_probe_count_clamped():
    assert BloomFilter([b"a"], bits_per_key=1).k >= 1
    assert BloomFilter([b"a"], bits_per_key=100).k <= 30


def test_approximate_bytes():
    bloom = BloomFilter([b"%d" % i for i in range(1000)], bits_per_key=8)
    assert bloom.approximate_bytes == pytest.approx(1000, rel=0.2)


@given(
    keys=st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=300),
    bits=st.integers(min_value=4, max_value=20),
)
def test_never_false_negative(keys, bits):
    """Property: every inserted key passes may_contain."""
    bloom = BloomFilter(keys, bits_per_key=bits)
    for key in keys:
        assert bloom.may_contain(key)


def test_deterministic():
    keys = [b"k%d" % i for i in range(50)]
    a = BloomFilter(keys, 10)
    b = BloomFilter(keys, 10)
    assert a._bits == b._bits
