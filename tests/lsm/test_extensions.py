"""Tests for the Section-VI optimization extensions: sharded write queues
and WAL compression."""

import pytest

from repro.errors import OptionsError
from repro.lsm.options import Options
from repro.lsm.value import ValueRef
from tests.conftest import make_db, run_op, tiny_options


def key(i):
    return b"%010d" % i


class TestShardedWriteQueues:
    def test_default_single_queue(self, engine):
        db = make_db(engine)
        assert len(db.write_queues) == 1
        assert db.write_queue is db.write_queues[0]

    def test_shard_count_honored(self, engine):
        db = make_db(engine, options=tiny_options(write_queue_shards=4))
        assert len(db.write_queues) == 4

    def test_sharded_writes_correct(self, engine):
        db = make_db(engine, options=tiny_options(write_queue_shards=4))

        def writer():
            for i in range(400):
                yield from db.put(key(i), ValueRef(i, 64))

        run_op(engine, writer())

        def checker():
            for i in range(0, 400, 13):
                got = yield from db.get(key(i))
                assert got == ValueRef(i, 64)

        run_op(engine, checker())

    def test_multiple_shards_used(self, engine):
        db = make_db(engine, options=tiny_options(write_queue_shards=4))

        def writer():
            for i in range(200):
                yield from db.put(key(i), b"v")

        run_op(engine, writer())
        used = sum(1 for q in db.write_queues if q.groups_formed > 0)
        assert used >= 2

    def test_sequence_numbers_unique_across_shards(self, engine):
        db = make_db(engine, options=tiny_options(write_queue_shards=4))

        def writer():
            for i in range(300):
                yield from db.put(key(i), b"v")

        run_op(engine, writer())
        seqs = []
        for table in db.memtables.tables_newest_first():
            for _, entry in table.sorted_items():
                seqs.append(entry[0])
        assert len(seqs) == len(set(seqs))

    def test_mean_waiting_aggregates(self, engine):
        db = make_db(engine, options=tiny_options(write_queue_shards=2))
        assert db.mean_waiting_writers() == 0.0

    def test_invalid_shards_rejected(self):
        with pytest.raises(OptionsError):
            Options(write_queue_shards=0).validate()


class TestWalCompression:
    def test_disabled_by_default(self, engine):
        db = make_db(engine)
        run_op(engine, db.put(key(1), ValueRef(1, 1000)))
        assert db.wal.bytes_written >= 1000

    def test_compression_shrinks_log(self, engine):
        plain = make_db(engine, options=tiny_options())
        packed = make_db(
            engine,
            options=tiny_options(wal_compression=True, wal_compression_ratio=0.5),
        )

        def writer(db):
            for i in range(50):
                yield from db.put(key(i), ValueRef(i, 1000))

        run_op(engine, writer(plain))
        run_op(engine, writer(packed))
        assert packed.wal.bytes_written == pytest.approx(
            plain.wal.bytes_written * 0.5, rel=0.05
        )

    def test_compressed_wal_recovers(self, engine):
        from repro.storage.profiles import xpoint_ssd
        from repro.lsm.db import DB
        from tests.conftest import make_fs

        fs = make_fs(engine, profile=xpoint_ssd())
        opts = tiny_options(wal_mode="sync", wal_compression=True)
        db = DB(engine, fs, opts)
        run_op(engine, db.put(key(9), b"compressed-but-durable"))
        fs.crash()
        db2 = DB(engine, fs, opts)
        assert run_op(engine, db2.get(key(9))) == b"compressed-but-durable"

    def test_invalid_ratio_rejected(self):
        with pytest.raises(OptionsError):
            Options(wal_compression_ratio=0.0).validate()
        with pytest.raises(OptionsError):
            Options(wal_compression_ratio=1.5).validate()
