"""Tests for value representations and the record format helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DBError
from repro.lsm.format import (
    KIND_DELETE,
    KIND_PUT,
    entry_charge,
    entry_file_bytes,
    entry_value_size,
    wal_record_bytes,
)
from repro.lsm.value import ValueRef, materialize, value_size


class TestValueRef:
    def test_materialize_size_and_determinism(self):
        ref = ValueRef(seed=7, size=1000)
        data = ref.materialize()
        assert len(data) == 1000
        assert data == ValueRef(seed=7, size=1000).materialize()

    def test_different_seeds_differ(self):
        assert ValueRef(1, 64).materialize() != ValueRef(2, 64).materialize()

    def test_zero_size(self):
        assert ValueRef(1, 0).materialize() == b""

    def test_negative_size_rejected(self):
        with pytest.raises(DBError):
            ValueRef(1, -1)

    @given(size=st.integers(min_value=0, max_value=5000))
    def test_materialized_length_matches(self, size):
        assert len(ValueRef(3, size).materialize()) == size


class TestValueHelpers:
    def test_value_size_bytes(self):
        assert value_size(b"hello") == 5
        assert value_size(bytearray(b"abc")) == 3

    def test_value_size_ref(self):
        assert value_size(ValueRef(0, 1024)) == 1024

    def test_value_size_invalid(self):
        with pytest.raises(DBError):
            value_size(42)

    def test_materialize_bytes_passthrough(self):
        assert materialize(b"x") == b"x"

    def test_materialize_invalid(self):
        with pytest.raises(DBError):
            materialize(3.14)


class TestFormat:
    def test_entry_value_size(self):
        assert entry_value_size((1, KIND_PUT, b"abc")) == 3
        assert entry_value_size((1, KIND_PUT, ValueRef(0, 77))) == 77
        assert entry_value_size((1, KIND_DELETE, None)) == 0

    def test_entry_file_bytes(self):
        assert entry_file_bytes(b"key", (1, KIND_PUT, b"abcd")) == 3 + 4 + 8
        assert entry_file_bytes(b"key", (1, KIND_DELETE, None)) == 3 + 8
        assert entry_file_bytes(b"key", (1, KIND_PUT, ValueRef(0, 100))) == 3 + 100 + 8

    def test_entry_charge_includes_overhead(self):
        entry = (1, KIND_PUT, ValueRef(0, 100))
        assert entry_charge(b"0123", entry, overhead=64) == 4 + 100 + 64

    def test_wal_record_bytes(self):
        entry = (1, KIND_PUT, b"abc")
        assert wal_record_bytes(b"key", entry, record_overhead=12) == 3 + 3 + 12
