"""Atomicity tests: write batches are all-or-nothing across crashes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.db import DB
from repro.lsm.write_batch import WriteBatch
from repro.sim.engine import Engine
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_fs, run_op, tiny_options


def key(i):
    return b"%06d" % i


def test_synced_batch_fully_recovered(engine):
    fs = make_fs(engine, profile=xpoint_ssd())
    db = DB(engine, fs, tiny_options(wal_mode="sync"))
    batch = WriteBatch()
    for i in range(20):
        batch.put(key(i), b"batch-value")
    run_op(engine, db.write(batch))
    fs.crash()
    db2 = DB(engine, fs, tiny_options(wal_mode="sync"))
    values = [run_op(engine, db2.get(key(i))) for i in range(20)]
    assert all(v == b"batch-value" for v in values)


def test_unsynced_batch_fully_lost(engine):
    fs = make_fs(engine, profile=xpoint_ssd())
    db = DB(engine, fs, tiny_options(wal_mode="buffered"))
    batch = WriteBatch()
    for i in range(20):
        batch.put(key(i), b"volatile")
    run_op(engine, db.write(batch))
    fs.crash()  # nothing written back: the whole batch vanishes
    db2 = DB(engine, fs, tiny_options(wal_mode="buffered"))
    values = [run_op(engine, db2.get(key(i))) for i in range(20)]
    assert all(v is None for v in values)


def test_mixed_batch_puts_and_deletes_atomic(engine):
    fs = make_fs(engine, profile=xpoint_ssd())
    db = DB(engine, fs, tiny_options(wal_mode="sync"))
    run_op(engine, db.put(key(1), b"old"))
    batch = WriteBatch().delete(key(1)).put(key(2), b"new")
    run_op(engine, db.write(batch))
    fs.crash()
    db2 = DB(engine, fs, tiny_options(wal_mode="sync"))
    assert run_op(engine, db2.get(key(1))) is None
    assert run_op(engine, db2.get(key(2))) == b"new"


@settings(max_examples=10, deadline=None)
@given(
    batches=st.lists(
        st.lists(
            st.tuples(st.integers(0, 40), st.booleans()), min_size=1, max_size=8
        ),
        min_size=1,
        max_size=12,
    ),
    crash_after=st.integers(min_value=0, max_value=12),
)
def test_crash_recovers_exact_batch_prefix(batches, crash_after):
    """With a synced WAL, recovery reflects exactly the batches written.

    Every batch is durable before the next begins, so after a crash the
    recovered state equals the sequential application of all batches —
    never a partial batch.
    """
    engine = Engine()
    fs = make_fs(engine, profile=xpoint_ssd())
    db = DB(engine, fs, tiny_options(wal_mode="sync"))
    model = {}
    for batch_no, ops in enumerate(batches):
        if batch_no == crash_after:
            break
        batch = WriteBatch()
        staged = {}
        for key_index, is_put in ops:
            k = key(key_index)
            if is_put:
                batch.put(k, b"b%d" % batch_no)
                staged[k] = b"b%d" % batch_no
            else:
                batch.delete(k)
                staged[k] = None
        run_op(engine, db.write(batch))
        model.update(staged)
    fs.crash()
    db2 = DB(engine, fs, tiny_options(wal_mode="sync"))
    for k, expected in model.items():
        assert run_op(engine, db2.get(k)) == expected
