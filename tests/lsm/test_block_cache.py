"""Tests for the LRU block cache."""

import pytest

from repro.errors import DBError
from repro.lsm.block_cache import BlockCache


def test_miss_then_hit():
    cache = BlockCache(1024)
    assert not cache.lookup((1, 0))
    cache.insert((1, 0), 100)
    assert cache.lookup((1, 0))
    assert cache.stats.get("hits") == 1
    assert cache.stats.get("misses") == 1


def test_byte_budget_eviction():
    cache = BlockCache(300)
    cache.insert((1, 0), 100)
    cache.insert((1, 1), 100)
    cache.insert((1, 2), 100)
    cache.insert((1, 3), 100)  # evicts (1,0)
    assert not cache.lookup((1, 0))
    assert cache.lookup((1, 3))
    assert cache.used_bytes <= 300


def test_lookup_promotes():
    cache = BlockCache(200)
    cache.insert((1, 0), 100)
    cache.insert((1, 1), 100)
    cache.lookup((1, 0))  # promote: (1,1) becomes LRU
    cache.insert((1, 2), 100)
    assert cache.lookup((1, 0))
    assert not cache.lookup((1, 1))


def test_reinsert_updates_charge():
    cache = BlockCache(1000)
    cache.insert((1, 0), 100)
    cache.insert((1, 0), 300)
    assert cache.used_bytes == 300
    assert len(cache) == 1


def test_oversized_block_rejected_silently():
    cache = BlockCache(100)
    cache.insert((1, 0), 500)
    assert len(cache) == 0
    assert cache.stats.get("rejected") == 1


def test_erase_file():
    cache = BlockCache(1000)
    cache.insert((1, 0), 100)
    cache.insert((1, 1), 100)
    cache.insert((2, 0), 100)
    cache.erase_file(1)
    assert not cache.lookup((1, 0))
    assert cache.lookup((2, 0))
    assert cache.used_bytes == 100


def test_invalid_inputs():
    with pytest.raises(DBError):
        BlockCache(-1)
    cache = BlockCache(100)
    with pytest.raises(DBError):
        cache.insert((1, 0), 0)


def test_hit_rate():
    cache = BlockCache(1000)
    cache.insert((1, 0), 10)
    cache.lookup((1, 0))
    cache.lookup((9, 9))
    assert cache.hit_rate() == pytest.approx(0.5)
    assert BlockCache(10).hit_rate() == 0.0
