"""Tests for the LRU block cache."""

import pytest

from repro.errors import DBError
from repro.lsm.block_cache import BlockCache


def test_miss_then_hit():
    cache = BlockCache(1024)
    assert not cache.lookup((1, 0))
    cache.insert((1, 0), 100)
    assert cache.lookup((1, 0))
    assert cache.stats.get("hits") == 1
    assert cache.stats.get("misses") == 1


def test_byte_budget_eviction():
    cache = BlockCache(300)
    cache.insert((1, 0), 100)
    cache.insert((1, 1), 100)
    cache.insert((1, 2), 100)
    cache.insert((1, 3), 100)  # evicts (1,0)
    assert not cache.lookup((1, 0))
    assert cache.lookup((1, 3))
    assert cache.used_bytes <= 300


def test_lookup_promotes():
    cache = BlockCache(200)
    cache.insert((1, 0), 100)
    cache.insert((1, 1), 100)
    cache.lookup((1, 0))  # promote: (1,1) becomes LRU
    cache.insert((1, 2), 100)
    assert cache.lookup((1, 0))
    assert not cache.lookup((1, 1))


def test_reinsert_updates_charge():
    cache = BlockCache(1000)
    cache.insert((1, 0), 100)
    cache.insert((1, 0), 300)
    assert cache.used_bytes == 300
    assert len(cache) == 1


def test_oversized_block_rejected_silently():
    cache = BlockCache(100)
    cache.insert((1, 0), 500)
    assert len(cache) == 0
    assert cache.stats.get("rejected") == 1


def test_erase_file():
    cache = BlockCache(1000)
    cache.insert((1, 0), 100)
    cache.insert((1, 1), 100)
    cache.insert((2, 0), 100)
    cache.erase_file(1)
    assert not cache.lookup((1, 0))
    assert cache.lookup((2, 0))
    assert cache.used_bytes == 100


def test_oversized_refresh_drops_old_entry_with_accounting():
    """Regression: refreshing a cached block to a charge over capacity
    silently dropped the old entry — the block vanished from the cache with
    no eviction, rejection or drop recorded anywhere."""
    cache = BlockCache(100)
    cache.insert((1, 0), 50)
    cache.insert((1, 0), 500)  # refresh grows past capacity
    assert len(cache) == 0
    assert cache.used_bytes == 0
    assert cache.stats.get("rejected") == 1
    assert cache.stats.get("refresh_drops") == 1


def test_fresh_oversized_insert_is_not_a_refresh_drop():
    cache = BlockCache(100)
    cache.insert((1, 0), 500)
    assert cache.stats.get("rejected") == 1
    assert cache.stats.get("refresh_drops") == 0


def test_erase_file_namespaced():
    """Shared caches key blocks as (namespace, sst, block): erasing one
    sharer's SST must not evict another sharer's same-numbered SST."""
    cache = BlockCache(1000)
    cache.insert((0, 5, 0), 100)
    cache.insert((1, 5, 0), 100)
    cache.insert((1, 6, 0), 100)
    cache.erase_file(5, namespace=1)
    assert cache.lookup((0, 5, 0))
    assert not cache.lookup((1, 5, 0))
    assert cache.lookup((1, 6, 0))
    assert cache.used_bytes == 200


def test_two_dbs_share_one_byte_budget():
    """Two DB instances on one cache: a joint byte budget, disjoint
    namespaces (the ISSUE's shared-cache contract for serving shards)."""
    from repro.lsm.db import DB
    from repro.sim.engine import Engine
    from repro.workloads.generators import encode_key
    from repro.workloads.prefill import PrefillSpec, prefill
    from tests.conftest import make_fs, run_op, tiny_options

    engine = Engine()
    cache = BlockCache(64 * 1024)
    dbs = []
    for ns in (0, 1):
        db = DB(
            engine,
            make_fs(engine),
            tiny_options(name=f"share-{ns}"),
            block_cache=cache,
            cache_namespace=ns,
        )
        assert db.block_cache is cache
        prefill(db, PrefillSpec(key_count=1500, value_size=64))
        dbs.append(db)
    for index in range(0, 1500, 23):
        for db in dbs:
            assert run_op(engine, db.get(encode_key(index))) is not None
    assert 0 < cache.used_bytes <= cache.capacity_bytes
    assert cache.stats.get("misses") > 0
    # Both sharers' blocks coexist under their own namespaces.
    assert {key[0] for key in cache._entries} == {0, 1}


def test_invalid_inputs():
    with pytest.raises(DBError):
        BlockCache(-1)
    cache = BlockCache(100)
    with pytest.raises(DBError):
        cache.insert((1, 0), 0)


def test_hit_rate():
    cache = BlockCache(1000)
    cache.insert((1, 0), 10)
    cache.lookup((1, 0))
    cache.lookup((9, 9))
    assert cache.hit_rate() == pytest.approx(0.5)
    assert BlockCache(10).hit_rate() == 0.0
