"""Background-error handling: classification, degradation, auto-resume.

The state machine under test (``repro.lsm.error_handler``) mirrors
RocksDB's: background failures classify into soft (writes stalled, resume
retrying), hard (read-only, resume still retrying) and fatal (read-only,
recover by reopen); transient fault *windows* clear and the DB must come
back on its own with no acked data lost.
"""

import pytest

from repro.errors import (
    CorruptionError,
    DBError,
    DBReadOnlyError,
    IOFaultError,
    OutOfSpaceError,
)
from repro.faults import (
    WRITE_ERROR,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultyDevice,
    FaultyFileSystem,
)
from repro.fs.page_cache import PageCache
from repro.lsm.db import DB
from repro.lsm.error_handler import (
    SEV_FATAL,
    SEV_HARD,
    SEV_NONE,
    SEV_SOFT,
    SOURCE_COMPACTION,
    SOURCE_FLUSH,
    SOURCE_MANIFEST,
    SOURCE_WAL,
    classify,
)
from repro.lsm.options import WAL_BUFFERED, WAL_SYNC
from repro.sim.rng import RandomStream
from repro.sim.units import kb, mb, ms, us
from repro.storage.profiles import xpoint_ssd
from tests.conftest import run_op, tiny_options


def key(i):
    return b"%010d" % i


def val(i):
    return b"val%06d" % i + b"x" * 120


def sleep(ns):
    yield ns


def wait_until(engine, pred, budget_ns, step_ns=us(50)):
    """Advance virtual time until ``pred()`` holds (deterministic poll)."""
    deadline = engine.now + budget_ns
    while not pred():
        assert engine.now < deadline, f"condition not reached in {budget_ns}ns"
        run_op(engine, sleep(step_ns))


def faulty_fs(engine, schedule):
    injector = FaultInjector(engine, schedule)
    device = FaultyDevice(engine, xpoint_ssd(), injector, RandomStream(7))
    return FaultyFileSystem(engine, device, PageCache(mb(16)), injector)


def storm_options(**overrides):
    """Small buffers + fast resume so tests converge in microseconds."""
    base = dict(
        write_buffer_size=kb(8),
        wal_mode=WAL_BUFFERED,
        bg_error_resume_interval_ns=us(50),
        bg_error_resume_max_interval_ns=us(800),
        # High ceiling: tests that want soft->hard escalation lower it.
        max_bg_error_resume_count=1000,
    )
    base.update(overrides)
    return tiny_options(**base)


def build_faulty_db(engine, schedule, **opts):
    fs = faulty_fs(engine, schedule)
    return DB(engine, fs, storm_options(**opts)), fs


def fill_until(engine, db, n, start=0):
    """Put ``n`` keys; returns the keys acked before any read-only reject."""
    acked = []

    def writer():
        for i in range(start, start + n):
            try:
                yield from db.put(key(i), val(i))
            except DBReadOnlyError:
                return
            acked.append(i)

    run_op(engine, writer())
    return acked


class TestClassify:
    @pytest.mark.parametrize(
        "source,exc,want",
        [
            (SOURCE_FLUSH, CorruptionError("bad block"), SEV_FATAL),
            (SOURCE_WAL, CorruptionError("bad record"), SEV_FATAL),
            (SOURCE_FLUSH, OutOfSpaceError("full"), SEV_SOFT),
            (SOURCE_WAL, OutOfSpaceError("full"), SEV_SOFT),
            (SOURCE_FLUSH, IOFaultError("io", transient=True), SEV_SOFT),
            (SOURCE_COMPACTION, IOFaultError("io", transient=True), SEV_SOFT),
            (SOURCE_WAL, IOFaultError("io", transient=True), SEV_HARD),
            (SOURCE_MANIFEST, IOFaultError("io", transient=True), SEV_HARD),
            (SOURCE_FLUSH, IOFaultError("io", transient=False), SEV_FATAL),
            (SOURCE_FLUSH, ValueError("bug"), SEV_HARD),
        ],
    )
    def test_severity_mapping(self, source, exc, want):
        assert classify(source, exc) == want


class TestBackoff:
    def test_exponential_with_cap(self, engine, null_fs):
        db = DB(
            engine,
            null_fs,
            tiny_options(
                bg_error_resume_interval_ns=100,
                bg_error_resume_backoff=2.0,
                bg_error_resume_max_interval_ns=450,
            ),
        )
        eh = db.error_handler
        assert [eh.backoff_ns(a) for a in range(5)] == [100, 200, 400, 450, 450]


class TestSoftStorm:
    """A transient flush-path fault window: degrade soft, auto-resume."""

    def _window_schedule(self, until):
        return FaultSchedule(
            [FaultSpec(WRITE_ERROR, at_time=0, until_time=until, count=10**6)]
        )

    def test_flush_faults_degrade_then_resume(self, engine):
        db, _fs = build_faulty_db(engine, self._window_schedule(ms(20)))
        acked = fill_until(engine, db, 120)  # several flushes' worth
        eh = db.error_handler

        # The storm degraded the DB at some point, but soft never
        # rejects a write: every put above was admitted (maybe slowly).
        assert acked == list(range(120))
        assert db.stats.get("bg_error.degraded_entries") >= 1
        assert db.stats.get("bg_error.source.flush") >= 1
        assert db.stats.get("bg_error.writes_rejected") == 0

        # Window over: resume retries land and the severity clears.
        wait_until(engine, lambda: eh.severity == SEV_NONE, ms(60))
        assert db.stats.get("bg_error.resume_successes") >= 1
        assert db.stats.get("bg_error.degraded_ns") > 0

        run_op(engine, db.wait_idle(timeout_ns=ms(100)))
        for i in (0, 60, 119):
            assert run_op(engine, db.get(key(i))) == val(i)

    def test_wait_idle_times_out_while_degraded(self, engine):
        # Plenty of memtable headroom: the failed flush strands an
        # immutable without stopping writes, so the fill finishes inside
        # the window and wait_idle is what has to notice the timeout.
        db, _fs = build_faulty_db(
            engine, self._window_schedule(ms(100)), max_write_buffer_number=6
        )
        fill_until(engine, db, 70)
        eh = db.error_handler
        wait_until(engine, lambda: eh.severity == SEV_SOFT, ms(10))

        with pytest.raises(DBError, match="timed out"):
            run_op(engine, db.wait_idle(timeout_ns=ms(2)))

    def test_escalates_to_read_only_after_max_resumes(self, engine):
        db, _fs = build_faulty_db(
            engine,
            self._window_schedule(ms(30)),
            max_bg_error_resume_count=1,
        )
        acked = fill_until(engine, db, 120)
        eh = db.error_handler
        wait_until(engine, lambda: eh.severity == SEV_HARD, ms(20))

        assert db.stats.get("bg_error.escalations") >= 1
        with pytest.raises(DBReadOnlyError):
            run_op(engine, db.put(key(9001), b"rejected"))
        assert db.stats.get("bg_error.writes_rejected") >= 1
        # Reads keep working in read-only mode.
        assert acked and run_op(engine, db.get(key(acked[0]))) == val(acked[0])

        # Storm clears; hard also auto-resumes.
        wait_until(engine, lambda: eh.severity == SEV_NONE, ms(60))
        run_op(engine, db.put(key(9001), b"accepted-now"))
        assert run_op(engine, db.get(key(9001))) == b"accepted-now"


class TestHardWalError:
    def test_wal_sync_fault_is_hard_then_resumes(self, engine):
        schedule = FaultSchedule(
            [FaultSpec(WRITE_ERROR, at_time=0, until_time=ms(20), count=10**6)]
        )
        db, _fs = build_faulty_db(engine, schedule, wal_mode=WAL_SYNC)

        with pytest.raises(IOFaultError):
            run_op(engine, db.put(key(1), b"lost-group"))
        assert db.error_handler.severity == SEV_HARD

        err = None
        try:
            run_op(engine, db.put(key(2), b"while-read-only"))
        except DBReadOnlyError as exc:
            err = exc
        assert err is not None and err.severity == SEV_HARD
        assert err.source == SOURCE_WAL

        eh = db.error_handler
        wait_until(engine, lambda: eh.severity == SEV_NONE, ms(40))
        assert db.stats.get("bg_error.to_hard") == 1
        run_op(engine, db.put(key(3), b"back"))
        assert run_op(engine, db.get(key(3))) == b"back"


class TestFatal:
    def test_permanent_fault_is_fatal_until_reopen(self, engine):
        schedule = FaultSchedule(
            [
                FaultSpec(
                    WRITE_ERROR,
                    at_time=0,
                    until_time=ms(20),
                    count=10**6,
                    transient=False,
                )
            ]
        )
        db, fs = build_faulty_db(engine, schedule)
        acked = fill_until(engine, db, 120)
        eh = db.error_handler
        wait_until(engine, lambda: eh.severity == SEV_FATAL, ms(20))
        assert eh.is_read_only
        with pytest.raises(IOFaultError):
            run_op(engine, db.wait_idle(timeout_ns=ms(10)))
        with pytest.raises(DBReadOnlyError):
            run_op(engine, db.put(key(9000), b"nope"))
        # Fatal does not auto-resume: still fatal after the fault window.
        wait_until(engine, lambda: engine.now > ms(25), ms(30))
        assert eh.severity == SEV_FATAL

        # Recovery is by reopen; the WAL was retained for the failed flush.
        run_op(engine, db.close())
        db2 = DB(engine, fs, storm_options())
        assert acked
        for i in (acked[0], acked[len(acked) // 2], acked[-1]):
            assert run_op(engine, db2.get(key(i))) == val(i)
        assert db2.error_handler.severity == SEV_NONE
