"""Crash-recovery tests: WAL replay, manifest replay, durability contract.

The crash cases form a parametrized matrix — WAL mode x crash point x
batch size — all asserting the same durability contract instead of
ad-hoc per-scenario expectations:

* recovered values are never wrong (correct-or-missing, no tearing);
* survivors form a prefix of the write order (group commit is ordered,
  writeback advances the durable watermark in record order);
* in ``sync`` mode every acknowledged write survives (ack => fsync);
* after a completed flush everything survives in every mode;
* the recovered level structure satisfies its invariants.
"""

import pytest

from repro.faults import FaultInjector, FaultSchedule, FaultSpec, FaultyDevice
from repro.faults import FaultyFileSystem, TORN_APPEND
from repro.fs.page_cache import PageCache
from repro.lsm.db import DB
from repro.lsm.options import WAL_BUFFERED, WAL_OFF, WAL_SYNC
from repro.lsm.value import ValueRef
from repro.lsm.write_batch import WriteBatch
from repro.sim.units import kb, mb
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_fs, run_op, tiny_options


def key(i):
    return b"%010d" % i


def val(i):
    return b"val%06d" % i + b"x" * 56


def build_db(engine, fs=None, **opts):
    fs = fs or make_fs(engine, profile=xpoint_ssd())
    return DB(engine, fs, tiny_options(**opts)), fs


def reopen(engine, fs, **opts):
    return DB(engine, fs, tiny_options(**opts))


class TestCleanReopen:
    def test_reopen_recovers_flushed_data(self, engine):
        db, fs = build_db(engine, write_buffer_size=kb(8))

        def writer():
            for i in range(300):
                yield from db.put(key(i), ValueRef(i, 64))

        run_op(engine, writer())
        run_op(engine, db.flush_all())
        run_op(engine, db.wait_idle())
        run_op(engine, db.close())

        db2 = reopen(engine, fs, write_buffer_size=kb(8))
        assert db2.stats.get("recovery.files") > 0
        for i in (0, 150, 299):
            assert run_op(engine, db2.get(key(i))) == ValueRef(i, 64)

    def test_reopen_replays_unflushed_wal(self, engine):
        db, fs = build_db(engine)
        run_op(engine, db.put(key(1), b"in-wal-only"))
        run_op(engine, db.close())

        db2 = reopen(engine, fs)
        assert db2.stats.get("recovery.wal_records") >= 1
        assert run_op(engine, db2.get(key(1))) == b"in-wal-only"

    def test_sequence_numbers_continue_after_reopen(self, engine):
        db, fs = build_db(engine)
        run_op(engine, db.put(key(1), b"a"))
        seq_before = db.versions.last_sequence
        run_op(engine, db.close())
        db2 = reopen(engine, fs)
        assert db2.versions.last_sequence >= seq_before
        run_op(engine, db2.put(key(2), b"b"))
        assert db2.versions.last_sequence > seq_before


PRE_SYNC = "pre_sync"
POST_SYNC_PRE_FLUSH = "post_sync_pre_flush"
MID_FLUSH = "mid_flush"
POST_FLUSH = "post_flush"

CRASH_POINTS = (PRE_SYNC, POST_SYNC_PRE_FLUSH, MID_FLUSH, POST_FLUSH)
N_KEYS = 96


class TestCrashRecoveryMatrix:
    """WAL mode x crash point x batch size, one shared durability contract."""

    @pytest.mark.parametrize("batch", [1, 8], ids=["batch1", "batch8"])
    @pytest.mark.parametrize("crash_point", CRASH_POINTS)
    @pytest.mark.parametrize(
        "wal_mode", [WAL_BUFFERED, WAL_SYNC], ids=["buffered", "sync"]
    )
    def test_recovered_state_is_consistent_prefix(
        self, engine, wal_mode, crash_point, batch
    ):
        fs = make_fs(engine, profile=xpoint_ssd())
        opts = dict(wal_mode=wal_mode, write_buffer_size=kb(4))
        db = DB(engine, fs, tiny_options(**opts))
        acked = []

        def writer():
            for start in range(0, N_KEYS, batch):
                group = list(range(start, min(start + batch, N_KEYS)))
                wb = WriteBatch()
                for i in group:
                    wb.put(key(i), val(i))
                yield from db.write(wb)
                acked.extend(group)

        if crash_point == MID_FLUSH:
            # Step the scheduler until a background flush is in flight,
            # then pull the plug under it.
            proc = engine.process(writer(), name="writer")
            proc.callbacks.append(lambda _ev: None)
            while not proc.done:
                nxt = engine.peek()
                assert nxt is not None, "writer deadlocked"
                engine.run(until=nxt)
                if db._active_flushes > 0:
                    break
            if proc.exception is not None:
                raise proc.exception
        else:
            run_op(engine, writer())
            if crash_point == POST_SYNC_PRE_FLUSH:
                run_op(engine, db.wal.sync())
            elif crash_point == POST_FLUSH:
                run_op(engine, db.flush_all())
                run_op(engine, db.wait_idle())
        fs.crash()

        db2 = reopen(engine, fs, **opts)
        observed = {}

        def reader():
            for i in range(N_KEYS):
                got = yield from db2.get(key(i))
                if got is not None:
                    observed[i] = got

        run_op(engine, reader())

        # Correct-or-missing: a recovered value is never wrong or torn.
        for i, got in observed.items():
            assert got == val(i), f"key {i} recovered with wrong value"
        # Prefix consistency: group commit is ordered and writeback advances
        # the watermark in record order, so survivors are a write-order
        # prefix (and batches are atomic: never a partial batch).
        assert set(observed) == set(range(len(observed)))
        if observed and batch > 1:
            assert len(observed) % batch == 0, "partial batch survived"
        # Acked durability: an fsynced ack is a promise.
        if wal_mode == WAL_SYNC:
            assert set(acked).issubset(set(observed))
        # Everything before an explicit sync or completed flush survives
        # in any mode.
        if crash_point in (POST_SYNC_PRE_FLUSH, POST_FLUSH):
            assert len(observed) == N_KEYS
        # Structural integrity of the recovered version.
        db2.versions.current.check_invariants()
        for meta in db2.versions.current.all_files():
            assert fs.exists(meta.file.path)
            assert meta.file.size >= meta.sst.file_bytes


class TestCrashSpecialCases:
    def test_double_crash_before_recovery_flush(self, engine):
        """Adopted pre-crash logs keep data alive across a second crash."""
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC))
        run_op(engine, db.put(key(42), b"keep-me"))
        run_op(engine, db.close())
        fs.crash()

        db2 = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC))
        assert run_op(engine, db2.get(key(42))) == b"keep-me"
        # Crash again before the recovered memtable ever flushes.
        fs.crash()
        db3 = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC))
        assert run_op(engine, db3.get(key(42))) == b"keep-me"

    def test_wal_off_loses_memtable_on_crash(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(engine, fs, tiny_options(wal_mode=WAL_OFF))
        run_op(engine, db.put(key(1), b"volatile"))
        fs.crash()
        db2 = DB(engine, fs, tiny_options(wal_mode=WAL_OFF))
        assert run_op(engine, db2.get(key(1))) is None


class TestTornWalTail:
    def _faulty_fs(self, engine, schedule):
        injector = FaultInjector(engine, schedule)
        device = FaultyDevice(engine, xpoint_ssd(), injector)
        return FaultyFileSystem(engine, device, PageCache(mb(16)), injector)

    def test_injected_torn_tail_is_detected_and_truncated(self, engine):
        """A torn WAL record fails its checksum scan; recovery truncates
        there and keeps the good prefix (the tentpole acceptance case)."""
        # Tear the 5th WAL append: its durable watermark lands mid-record.
        schedule = FaultSchedule(
            [FaultSpec(TORN_APPEND, at_op=5, path="wal/")]
        )
        fs = self._faulty_fs(engine, schedule)
        db = DB(engine, fs, tiny_options())  # buffered WAL: tear persists

        for i in range(8):
            run_op(engine, db.put(key(i), val(i)))
        assert fs.stats.get("injected_torn_appends") == 1
        fs.crash()
        assert fs.stats.get("torn_records") == 1

        db2 = DB(engine, fs, tiny_options())
        assert db2.stats.get("recovery.wal_bad_records") >= 1
        assert db2.stats.get("recovery.wal_truncated_logs") == 1
        # Records 1..4 replay; the torn record 5 and everything after is gone.
        for i in range(4):
            assert run_op(engine, db2.get(key(i))) == val(i)
        for i in range(4, 8):
            assert run_op(engine, db2.get(key(i))) is None

    def test_torn_tail_without_faults_is_impossible(self, engine):
        """Normal writeback never leaves a torn record at crash."""
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC))
        for i in range(8):
            run_op(engine, db.put(key(i), val(i)))
        fs.crash()
        assert fs.stats.get("torn_records") == 0
        db2 = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC))
        assert db2.stats.get("recovery.wal_bad_records") == 0


class TestDiskFull:
    """ENOSPC as a *recoverable* condition: soft error, resume, crash-safe.

    The disk-full model is a byte quota on the filesystem; squeezing it to
    current usage makes the next extent allocation raise OutOfSpaceError.
    The DB must degrade soft (keep acking what it can), auto-resume when
    the quota lifts, and never lose an acked write across a crash that
    happens while the disk is full.
    """

    def _options(self, **overrides):
        base = dict(
            write_buffer_size=kb(8),
            max_write_buffer_number=6,
            bg_error_resume_interval_ns=50_000,
            bg_error_resume_max_interval_ns=800_000,
        )
        base.update(overrides)
        return tiny_options(**base)

    def _sleep_until(self, engine, pred, budget_ns, step_ns=50_000):
        def stepper():
            yield step_ns

        deadline = engine.now + budget_ns
        while not pred():
            assert engine.now < deadline, "condition not reached in budget"
            run_op(engine, stepper())

    def _fill(self, engine, db, lo, hi):
        def writer():
            for i in range(lo, hi):
                yield from db.put(key(i), val(i))

        run_op(engine, writer())

    def test_flush_enospc_degrades_soft_then_resumes(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(engine, fs, self._options())
        self._fill(engine, db, 0, 40)
        run_op(engine, db.wait_idle(timeout_ns=mb(1)))

        fs.set_quota(fs.used_bytes())  # zero headroom: next extent fails
        self._fill(engine, db, 40, 110)  # forces a flush into a full disk
        eh = db.error_handler
        self._sleep_until(engine, lambda: eh.severity == "soft", 20_000_000)
        assert db.stats.get("bg_error.degraded_entries") >= 1
        assert fs.stats.get("quota_enospc") >= 1
        # ENOSPC is soft: nothing was rejected, everything above acked.
        assert db.stats.get("bg_error.writes_rejected") == 0

        fs.set_quota(None)
        self._sleep_until(engine, lambda: eh.severity == "", 60_000_000)
        assert db.stats.get("bg_error.resume_successes") >= 1
        run_op(engine, db.wait_idle(timeout_ns=100_000_000))
        for i in (0, 39, 40, 75, 109):
            assert run_op(engine, db.get(key(i))) == val(i)

    def test_crash_while_disk_full_keeps_acked_writes(self, engine):
        """Acked (synced-WAL) writes survive a crash taken mid-ENOSPC."""
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(engine, fs, self._options(wal_mode=WAL_SYNC))
        self._fill(engine, db, 0, 40)
        run_op(engine, db.wait_idle(timeout_ns=mb(1)))

        fs.set_quota(fs.used_bytes())
        self._fill(engine, db, 40, 110)  # acks land in the synced WAL
        eh = db.error_handler
        self._sleep_until(engine, lambda: eh.severity == "soft", 20_000_000)

        fs.crash()
        fs.set_quota(None)  # the operator fixed the disk before restart
        db2 = DB(engine, fs, self._options(wal_mode=WAL_SYNC))
        for i in (0, 39, 40, 75, 109):
            assert run_op(engine, db2.get(key(i))) == val(i)
        assert db2.error_handler.severity == ""
