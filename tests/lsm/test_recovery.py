"""Crash-recovery tests: WAL replay, manifest replay, durability contract."""

import pytest

from repro.lsm.db import DB
from repro.lsm.options import WAL_OFF, WAL_SYNC
from repro.lsm.value import ValueRef
from repro.sim.units import kb
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_fs, run_op, tiny_options


def key(i):
    return b"%010d" % i


def build_db(engine, fs=None, **opts):
    fs = fs or make_fs(engine, profile=xpoint_ssd())
    return DB(engine, fs, tiny_options(**opts)), fs


def reopen(engine, fs, **opts):
    return DB(engine, fs, tiny_options(**opts))


class TestCleanReopen:
    def test_reopen_recovers_flushed_data(self, engine):
        db, fs = build_db(engine, write_buffer_size=kb(8))

        def writer():
            for i in range(300):
                yield from db.put(key(i), ValueRef(i, 64))

        run_op(engine, writer())
        run_op(engine, db.flush_all())
        run_op(engine, db.wait_idle())
        run_op(engine, db.close())

        db2 = reopen(engine, fs, write_buffer_size=kb(8))
        assert db2.stats.get("recovery.files") > 0
        for i in (0, 150, 299):
            assert run_op(engine, db2.get(key(i))) == ValueRef(i, 64)

    def test_reopen_replays_unflushed_wal(self, engine):
        db, fs = build_db(engine)
        run_op(engine, db.put(key(1), b"in-wal-only"))
        run_op(engine, db.close())

        db2 = reopen(engine, fs)
        assert db2.stats.get("recovery.wal_records") >= 1
        assert run_op(engine, db2.get(key(1))) == b"in-wal-only"

    def test_sequence_numbers_continue_after_reopen(self, engine):
        db, fs = build_db(engine)
        run_op(engine, db.put(key(1), b"a"))
        seq_before = db.versions.last_sequence
        run_op(engine, db.close())
        db2 = reopen(engine, fs)
        assert db2.versions.last_sequence >= seq_before
        run_op(engine, db2.put(key(2), b"b"))
        assert db2.versions.last_sequence > seq_before


class TestCrash:
    def test_synced_wal_survives_crash(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC))
        run_op(engine, db.put(key(1), b"durable"))
        run_op(engine, db.close())
        fs.crash()

        db2 = reopen(engine, fs, wal_mode=WAL_SYNC)
        assert run_op(engine, db2.get(key(1))) == b"durable"

    def test_unsynced_buffered_wal_may_lose_tail(self, engine):
        """Buffered WAL: un-writtenback records vanish at crash."""
        db, fs = build_db(engine)  # buffered mode, 512 KB writeback
        run_op(engine, db.put(key(1), b"tiny"))  # far below writeback threshold
        fs.crash()
        db2 = reopen(engine, fs)
        assert run_op(engine, db2.get(key(1))) is None

    def test_flushed_sst_survives_crash(self, engine):
        db, fs = build_db(engine, write_buffer_size=kb(4))

        def writer():
            for i in range(200):
                yield from db.put(key(i), ValueRef(i, 64))

        run_op(engine, writer())
        run_op(engine, db.flush_all())
        run_op(engine, db.wait_idle())
        fs.crash()

        db2 = reopen(engine, fs, write_buffer_size=kb(4))
        for i in (0, 100, 199):
            assert run_op(engine, db2.get(key(i))) == ValueRef(i, 64)

    def test_double_crash_before_recovery_flush(self, engine):
        """Adopted pre-crash logs keep data alive across a second crash."""
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC))
        run_op(engine, db.put(key(42), b"keep-me"))
        run_op(engine, db.close())
        fs.crash()

        db2 = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC))
        assert run_op(engine, db2.get(key(42))) == b"keep-me"
        # Crash again before the recovered memtable ever flushes.
        fs.crash()
        db3 = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC))
        assert run_op(engine, db3.get(key(42))) == b"keep-me"

    def test_wal_off_loses_memtable_on_crash(self, engine):
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(engine, fs, tiny_options(wal_mode=WAL_OFF))
        run_op(engine, db.put(key(1), b"volatile"))
        fs.crash()
        db2 = DB(engine, fs, tiny_options(wal_mode=WAL_OFF))
        assert run_op(engine, db2.get(key(1))) is None

    def test_crash_mid_stream_keeps_prefix_consistent(self, engine):
        """After a crash, every visible key has a correct value (no tearing)."""
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC, write_buffer_size=kb(4)))

        def writer():
            for i in range(150):
                yield from db.put(key(i), ValueRef(i, 64))

        run_op(engine, writer())
        fs.crash()
        db2 = DB(engine, fs, tiny_options(wal_mode=WAL_SYNC, write_buffer_size=kb(4)))

        def checker():
            for i in range(150):
                got = yield from db2.get(key(i))
                assert got is None or got == ValueRef(i, 64)

        run_op(engine, checker())
