"""Tests for the background I/O rate limiter."""

import pytest

from repro.errors import DBError
from repro.lsm.rate_limiter import RateLimiter
from repro.lsm.value import ValueRef
from repro.sim.units import MB, SEC, kb, mb, seconds
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_db, run_op, tiny_options


class TestTokenBucket:
    def test_first_request_free(self, engine):
        limiter = RateLimiter(engine, bytes_per_sec=MB)
        assert limiter.request(64 * 1024) == 0

    def test_pacing_converges_to_rate(self, engine):
        limiter = RateLimiter(engine, bytes_per_sec=MB)

        def pacer():
            for _ in range(100):
                delay = limiter.request(64 * 1024)
                yield delay if delay > 0 else 1

        engine.process(pacer())
        engine.run()
        # 100 x 64 KB at 1 MB/s ~ 6.25 s.
        assert engine.now == pytest.approx(100 * 64 * 1024 * SEC / MB, rel=0.05)

    def test_idle_credit_capped(self, engine):
        limiter = RateLimiter(engine, bytes_per_sec=MB, burst_ns=seconds(0.1))

        def pacer():
            yield seconds(10)  # long idle: credit must not pile up
            delays = [limiter.request(256 * 1024) for _ in range(8)]
            return delays

        p = engine.process(pacer())
        engine.run()
        assert any(d > 0 for d in p.value)

    def test_invalid_inputs(self, engine):
        with pytest.raises(DBError):
            RateLimiter(engine, 0)
        limiter = RateLimiter(engine, MB)
        with pytest.raises(DBError):
            limiter.request(0)

    def test_effective_rate(self, engine):
        limiter = RateLimiter(engine, bytes_per_sec=MB)
        limiter.request(MB)
        assert limiter.effective_rate(SEC) == pytest.approx(MB)
        assert limiter.effective_rate(0) == 0.0


class TestDbIntegration:
    def fill(self, engine, db, n=1500):
        def writer():
            for i in range(n):
                yield from db.put(b"%08d" % i, ValueRef(i, 100))
            yield from db.flush_all()
            yield from db.wait_idle()

        run_op(engine, writer())

    def test_disabled_by_default(self, engine):
        db = make_db(engine)
        assert db.rate_limiter is None

    def test_limiter_paces_background_bytes(self):
        from repro.sim.engine import Engine

        def run(rate):
            engine = Engine()
            opts = tiny_options(rate_limit_bytes_per_sec=rate)
            db = make_db(engine, profile=xpoint_ssd(), options=opts)
            self.fill(engine, db)
            return engine.now, db

        slow_time, slow_db = run(kb(256))
        fast_time, fast_db = run(mb(64))
        assert slow_db.rate_limiter.total_delay_ns > 0
        assert slow_time > fast_time  # pacing really slowed background work

    def test_limited_db_still_correct(self, engine):
        opts = tiny_options(rate_limit_bytes_per_sec=kb(512))
        db = make_db(engine, profile=xpoint_ssd(), options=opts)
        self.fill(engine, db, n=800)
        for i in (0, 400, 799):
            assert run_op(engine, db.get(b"%08d" % i)) == ValueRef(i, 100)

    def test_invalid_option_rejected(self):
        from repro.lsm.options import Options

        with pytest.raises(Exception):
            Options(rate_limit_bytes_per_sec=-1).validate()
