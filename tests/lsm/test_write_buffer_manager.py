"""Tests for the shared memtable byte budget (``WriteBufferManager``)."""

import pytest

from repro.errors import DBError
from repro.lsm.write_buffer_manager import WriteBufferManager


class _Memtable:
    def __init__(self, charged_bytes=0):
        self.charged_bytes = charged_bytes


class _Memtables:
    def __init__(self, mutable=0, immutables=()):
        self.mutable = _Memtable(mutable)
        self.immutables = [_Memtable(b) for b in immutables]


class _StubDB:
    """Just enough DB surface for the manager's accounting."""

    def __init__(self, mutable=0, immutables=()):
        self.memtables = _Memtables(mutable, immutables)


def test_validation():
    with pytest.raises(DBError):
        WriteBufferManager(0)
    with pytest.raises(DBError):
        WriteBufferManager(-1)


def test_register_unregister_idempotent():
    wbm = WriteBufferManager(1000)
    db = _StubDB()
    wbm.register(db)
    wbm.register(db)
    assert wbm.num_dbs == 1
    wbm.unregister(db)
    wbm.unregister(db)
    assert wbm.num_dbs == 0


def test_usage_accounting_spans_dbs():
    wbm = WriteBufferManager(10_000)
    wbm.register(_StubDB(mutable=100, immutables=(50, 25)))
    wbm.register(_StubDB(mutable=200))
    assert wbm.mutable_usage() == 300
    assert wbm.memory_usage() == 375
    assert not wbm.over_budget()


def test_mutable_limit_is_seven_eighths():
    assert WriteBufferManager(8000).mutable_limit == 7000


def test_under_budget_never_flushes():
    wbm = WriteBufferManager(1000)
    db = _StubDB(mutable=400)
    wbm.register(db)
    assert not wbm.should_flush(db)
    assert wbm.stats.get("flush_triggers") == 0


def test_mutable_over_seven_eighths_triggers():
    wbm = WriteBufferManager(1000)
    db = _StubDB(mutable=900)  # > 875 = 7/8 of 1000
    wbm.register(db)
    assert wbm.should_flush(db)
    assert wbm.stats.get("flush_triggers") == 1


def test_total_over_budget_needs_half_mutable():
    """Total usage over budget triggers only once mutable >= budget/2 —
    otherwise the pressure is all pending flushes and sealing more
    memtables would not help (RocksDB's ShouldFlush condition)."""
    wbm = WriteBufferManager(1000)
    mostly_immutable = _StubDB(mutable=100, immutables=(950,))
    wbm.register(mostly_immutable)
    assert not wbm.should_flush(mostly_immutable)
    half_mutable = _StubDB(mutable=500, immutables=(600,))
    wbm2 = WriteBufferManager(1000)
    wbm2.register(half_mutable)
    assert wbm2.should_flush(half_mutable)


def test_only_largest_mutable_owner_flushes():
    wbm = WriteBufferManager(1000)
    small = _StubDB(mutable=100)
    big = _StubDB(mutable=880)
    wbm.register(small)
    wbm.register(big)
    assert not wbm.should_flush(small)
    assert wbm.should_flush(big)
    assert wbm.stats.get("flush_triggers") == 1


def test_tie_goes_to_earliest_registered():
    wbm = WriteBufferManager(1000)
    first = _StubDB(mutable=450)
    second = _StubDB(mutable=450)
    wbm.register(first)
    wbm.register(second)
    assert wbm.should_flush(first)
    assert not wbm.should_flush(second)


def test_empty_mutable_never_flushes():
    wbm = WriteBufferManager(1000)
    idle = _StubDB(mutable=0, immutables=(2000,))
    wbm.register(idle)
    assert not wbm.should_flush(idle)


def test_peak_usage_high_water_mark():
    wbm = WriteBufferManager(1000)
    db = _StubDB(mutable=900)
    wbm.register(db)
    wbm.should_flush(db)
    db.memtables.mutable.charged_bytes = 100
    wbm.should_flush(db)
    assert wbm.peak_usage == 900


def test_describe_mentions_budget():
    wbm = WriteBufferManager(4 * 1024 * 1024)
    assert "write-buffer budget 4 MB" in wbm.describe()
