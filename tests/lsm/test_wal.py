"""Tests for the write-ahead log manager."""

import pytest

from repro.lsm.format import KIND_PUT
from repro.lsm.options import WAL_BUFFERED, WAL_OFF, WAL_SYNC
from repro.lsm.costs import DEFAULT_COSTS
from repro.lsm.wal import WalManager
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_fs, tiny_options


def record(i):
    return (b"%06d" % i, (i + 1, KIND_PUT, b"v" * 32))


def make_wal(engine, mode=WAL_BUFFERED, fs=None):
    fs = fs or make_fs(engine)
    opts = tiny_options(wal_mode=mode)
    return WalManager(engine, fs, opts, DEFAULT_COSTS), fs


def test_disabled_mode_is_noop(engine):
    wal, fs = make_wal(engine, mode=WAL_OFF)
    assert not wal.enabled
    cpu, ev = wal.add_group([record(1)])
    assert cpu == 0 and ev is None
    assert fs.list("wal/") == []


def test_first_log_created(engine):
    wal, fs = make_wal(engine)
    assert wal.enabled
    assert fs.list("wal/") == ["wal/000001.log"]
    assert wal.current_number == 1


def test_add_group_accumulates_bytes(engine):
    wal, _ = make_wal(engine)
    cpu, _ = wal.add_group([record(1), record(2)])
    assert cpu > 0
    assert wal.bytes_written == 2 * (6 + 32 + 12)


def test_roll_creates_new_log_and_keeps_old(engine):
    wal, fs = make_wal(engine)
    wal.add_group([record(1)])
    wal.roll(2)
    assert wal.current_number == 2
    assert fs.list("wal/") == ["wal/000001.log", "wal/000002.log"]


def test_roll_number_monotonic(engine):
    wal, _ = make_wal(engine)
    wal.roll(5)
    wal.roll(3)  # stale number gets bumped
    assert wal.current_number == 6


def test_release_up_to_deletes_old_logs(engine):
    wal, fs = make_wal(engine)
    wal.add_group([record(1)])
    wal.roll(2)
    wal.release_up_to(1)
    assert fs.list("wal/") == ["wal/000002.log"]


def test_release_never_deletes_current(engine):
    wal, fs = make_wal(engine)
    wal.release_up_to(10)
    assert fs.list("wal/") == ["wal/000001.log"]


def test_sync_mode_returns_wait_event(engine):
    wal, _ = make_wal(engine, mode=WAL_SYNC, fs=make_fs(engine, profile=xpoint_ssd()))
    _, ev = wal.add_group([record(1)])
    assert ev is not None
    done = {}

    def proc():
        yield ev
        done["t"] = engine.now

    engine.process(proc())
    engine.run()
    assert done["t"] > 0
    assert wal.current.synced_size > 0


def test_replay_yields_records_in_order(engine):
    wal, fs = make_wal(engine)
    wal.add_group([record(1), record(2)])
    wal.add_group([record(3)])
    replayed = list(WalManager.replay(fs))
    assert [k for k, _ in replayed] == [b"%06d" % i for i in (1, 2, 3)]


def test_adopts_pre_existing_logs(engine):
    wal, fs = make_wal(engine)
    wal.add_group([record(1)])
    # Simulate reopen: a second manager on the same filesystem.
    opts = tiny_options(wal_mode=WAL_BUFFERED)
    wal2 = WalManager(engine, fs, opts, DEFAULT_COSTS)
    numbers = [num for num, _ in wal2.live_logs()]
    assert numbers == [1, 2]
    assert wal2.current_number == 2
