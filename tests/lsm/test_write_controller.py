"""Tests for Algorithm 1: the write controller."""

import pytest

from repro.errors import DBError
from repro.lsm.options import Options
from repro.lsm.write_controller import (
    DELAYED,
    NORMAL,
    STOPPED,
    StallMetrics,
    WriteController,
)
from repro.sim.units import MB, SEC, us
from tests.conftest import tiny_options


def metrics(l0=0, imm=0, max_imm=1, pending=0):
    return StallMetrics(
        l0_files=l0,
        immutable_memtables=imm,
        max_immutable_memtables=max_imm,
        pending_compaction_bytes=pending,
    )


def make_controller(engine, **opts):
    return WriteController(engine, tiny_options(**opts))


class TestStatePolicy:
    def test_normal_by_default(self, engine):
        wc = make_controller(engine)
        assert wc.state == NORMAL
        assert wc.pick_state(metrics()) == NORMAL

    def test_slowdown_at_l0_trigger(self, engine):
        wc = make_controller(engine)
        assert wc.pick_state(metrics(l0=20)) == DELAYED  # default trigger
        assert wc.pick_state(metrics(l0=19)) == NORMAL

    def test_stop_at_l0_stop_trigger(self, engine):
        wc = make_controller(engine)
        assert wc.pick_state(metrics(l0=36)) == STOPPED

    def test_stop_on_full_memtables(self, engine):
        wc = make_controller(engine)
        assert wc.pick_state(metrics(imm=1, max_imm=1)) == STOPPED

    def test_delay_on_pending_compaction_debt(self, engine):
        wc = make_controller(
            engine, soft_pending_compaction_bytes_limit=10 * MB
        )
        assert wc.pick_state(metrics(pending=10 * MB)) == DELAYED

    def test_update_counts_transitions(self, engine):
        wc = make_controller(engine)
        wc.update(metrics(l0=20))
        assert wc.state == DELAYED
        assert wc.stats.get("slowdowns") == 1
        wc.update(metrics(l0=36))
        assert wc.state == STOPPED
        assert wc.stats.get("stops") == 1


class TestStopEvent:
    def test_stop_event_fires_on_clear(self, engine):
        wc = make_controller(engine)
        wc.update(metrics(l0=36))
        woke = []

        def writer():
            yield wc.stop_wait_event()
            woke.append(engine.now)

        engine.process(writer())

        def clearer():
            yield 1000
            wc.update(metrics(l0=0))

        engine.process(clearer())
        engine.run()
        assert woke == [1000]
        assert wc.state == NORMAL

    def test_stop_wait_requires_stopped(self, engine):
        wc = make_controller(engine)
        with pytest.raises(DBError):
            wc.stop_wait_event()


class TestDelays:
    def test_no_delay_when_normal(self, engine):
        wc = make_controller(engine)
        assert wc.get_delay(1024) == 0

    def test_pacing_matches_rate(self, engine):
        """Aggregate delayed intake converges to delayed_write_rate."""
        wc = make_controller(engine, delayed_write_rate=1 * MB)
        wc.update(metrics(l0=20))
        writes = 200

        def writer():
            for _ in range(writes):
                delay = wc.get_delay(1024)
                yield delay if delay > 0 else 1

        engine.process(writer())
        engine.run()
        # 200 KB at 1 MB/s ~ 0.195 s of wall time.
        expected = writes * 1024 * SEC / MB
        assert engine.now == pytest.approx(expected, rel=0.05)

    def test_min_rate_gives_refill_scale_delays(self, engine):
        """At the 1 MB/s floor a 1 KB write waits ~1024 us (Eq. 1's delay)."""
        wc = make_controller(engine, delayed_write_rate=1 * MB)
        wc.update(metrics(l0=20))
        wc.get_delay(1024)  # prime the virtual clock
        delay = wc.get_delay(1024)
        assert delay == pytest.approx(us(1024), rel=0.05)

    def test_idle_credit_capped_at_one_interval(self, engine):
        wc = make_controller(engine, delayed_write_rate=16 * MB)
        wc.update(metrics(l0=20))
        # Long idle: only one refill interval of credit accrues, so a burst
        # of writes is paced after roughly refill_interval worth of bytes.
        burst_delays = [wc.get_delay(64 * 1024) for _ in range(10)]
        assert burst_delays[0] == 0
        assert any(d > 0 for d in burst_delays[1:])

    def test_delay_stats_recorded(self, engine):
        wc = make_controller(engine, delayed_write_rate=1 * MB)
        wc.update(metrics(l0=20))
        for _ in range(5):
            wc.get_delay(4096)
        assert wc.stats.get("delays") > 0
        assert wc.stats.get("delay_ns_total") > 0


class TestRefillClockReset:
    def test_stale_reservation_cleared_on_leaving_delayed(self, engine):
        """Regression: reservations from one DELAYED episode must not
        charge the first writes of the next one (STOPPED skips
        reset_rate(), so get_delay() itself has to clear the clock)."""
        wc = make_controller(engine, delayed_write_rate=1 * MB)
        wc.update(metrics(l0=20))
        for _ in range(8):  # reserve 512 KB at 1 MB/s ~ 0.5 s of credit
            wc.get_delay(64 * 1024)
        assert wc._next_refill_time > engine.now + SEC // 3
        wc.update(metrics(l0=36))  # DELAYED -> STOPPED
        assert wc.get_delay(1024) == 0  # non-delayed probe resets the clock
        wc.update(metrics(l0=20))  # STOPPED -> DELAYED again
        assert wc.get_delay(1024) <= wc.options.refill_interval_ns


class TestRateAdaptation:
    def test_rate_decays_when_backlog_grows(self, engine):
        wc = make_controller(engine)
        wc.update(metrics(l0=20))
        initial = wc.delayed_write_rate
        wc.on_delayed_write(backlog_bytes=100)
        wc.on_delayed_write(backlog_bytes=200)  # growing: Dec = 0.8
        assert wc.delayed_write_rate == pytest.approx(initial * 0.8)

    def test_rate_recovers_when_backlog_shrinks(self, engine):
        wc = make_controller(engine)
        wc.update(metrics(l0=20))
        wc.on_delayed_write(backlog_bytes=200)
        wc.on_delayed_write(backlog_bytes=100)  # shrinking: Inc = 1.25
        assert wc.delayed_write_rate == pytest.approx(
            float(wc.options.delayed_write_rate) * 1.25
        )

    def test_rate_bounded_below(self, engine):
        wc = make_controller(engine)
        wc.update(metrics(l0=20))
        for i in range(100):
            wc.on_delayed_write(backlog_bytes=i + 1)  # always growing
        assert wc.delayed_write_rate >= wc.options.min_delayed_write_rate

    def test_rate_bounded_above(self, engine):
        wc = make_controller(engine)
        wc.update(metrics(l0=20))
        for i in range(100, 0, -1):
            wc.on_delayed_write(backlog_bytes=i)  # always shrinking
        assert wc.delayed_write_rate <= 4 * wc.options.delayed_write_rate

    def test_reset_rate(self, engine):
        wc = make_controller(engine)
        wc.update(metrics(l0=20))
        wc.on_delayed_write(100)
        wc.on_delayed_write(200)
        wc.reset_rate()
        assert wc.delayed_write_rate == float(wc.options.delayed_write_rate)
