"""End-to-end DB tests: reads, writes, flush, compaction, scans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DBClosedError, DBError
from repro.lsm.db import DB
from repro.lsm.options import WAL_OFF
from repro.lsm.value import ValueRef
from repro.lsm.write_batch import WriteBatch
from repro.sim.engine import Engine
from repro.sim.units import kb
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_db, run_op, tiny_options


def key(i):
    return b"%010d" % i


class TestBasicOps:
    def test_put_get_roundtrip(self, engine):
        db = make_db(engine)
        run_op(engine, db.put(key(1), b"hello"))
        assert run_op(engine, db.get(key(1))) == b"hello"

    def test_get_missing_returns_none(self, engine):
        db = make_db(engine)
        assert run_op(engine, db.get(key(404))) is None
        assert db.stats.get("get.miss") == 1

    def test_delete_hides_value(self, engine):
        db = make_db(engine)
        run_op(engine, db.put(key(1), b"v"))
        run_op(engine, db.delete(key(1)))
        assert run_op(engine, db.get(key(1))) is None

    def test_overwrite_latest_wins(self, engine):
        db = make_db(engine)
        run_op(engine, db.put(key(1), b"old"))
        run_op(engine, db.put(key(1), b"new"))
        assert run_op(engine, db.get(key(1))) == b"new"

    def test_valueref_passthrough_and_materialize(self, engine):
        db = make_db(engine)
        ref = ValueRef(9, 128)
        run_op(engine, db.put(key(2), ref))
        assert run_op(engine, db.get(key(2))) == ref
        assert run_op(engine, db.get_bytes(key(2))) == ref.materialize()

    def test_write_batch_atomic_visibility(self, engine):
        db = make_db(engine)
        batch = WriteBatch().put(key(1), b"a").put(key(2), b"b").delete(key(1))
        run_op(engine, db.write(batch))
        assert run_op(engine, db.get(key(1))) is None
        assert run_op(engine, db.get(key(2))) == b"b"

    def test_empty_batch_is_noop(self, engine):
        db = make_db(engine)
        assert run_op(engine, db.write(WriteBatch())) == 0

    def test_multi_get(self, engine):
        db = make_db(engine)
        run_op(engine, db.put(key(1), b"a"))
        run_op(engine, db.put(key(3), b"c"))
        values = run_op(engine, db.multi_get([key(1), key(2), key(3)]))
        assert values == [b"a", None, b"c"]

    def test_run_sync_helper(self, engine):
        db = make_db(engine)
        db.run_sync(db.put(key(7), b"v"))
        assert db.run_sync(db.get(key(7))) == b"v"

    def test_closed_db_rejects_ops(self, engine):
        db = make_db(engine)
        run_op(engine, db.close())
        with pytest.raises(DBClosedError):
            run_op(engine, db.put(key(1), b"v"))
        with pytest.raises(DBClosedError):
            run_op(engine, db.get(key(1)))


class TestFlushAndCompaction:
    def fill(self, engine, db, n, value_size=100, start=0):
        def writer():
            for i in range(start, start + n):
                yield from db.put(key(i), ValueRef(i, value_size))

        run_op(engine, writer())

    def test_flush_moves_data_to_l0(self, engine):
        db = make_db(engine, options=tiny_options(write_buffer_size=kb(8)))
        self.fill(engine, db, 100)
        run_op(engine, db.flush_all())
        assert db.versions.current.num_files(0) >= 1
        assert run_op(engine, db.get(key(5))) == ValueRef(5, 100)

    def test_reads_through_all_levels(self, engine):
        db = make_db(engine, options=tiny_options(write_buffer_size=kb(8)))
        self.fill(engine, db, 2000)
        run_op(engine, db.flush_all())
        run_op(engine, db.wait_idle())
        shape = db.level_shape()
        assert sum(shape[1:]) > 0  # compaction pushed data below L0
        for i in (0, 777, 1999):
            assert run_op(engine, db.get(key(i))) == ValueRef(i, 100)

    def test_overwrites_survive_compaction(self, engine):
        db = make_db(engine, options=tiny_options(write_buffer_size=kb(8)))
        self.fill(engine, db, 500)
        self.fill(engine, db, 500)  # second pass: new ValueRef versions? same
        run_op(engine, db.flush_all())
        run_op(engine, db.wait_idle())
        assert run_op(engine, db.get(key(250))) == ValueRef(250, 100)

    def test_tombstones_dropped_at_bottom(self, engine):
        db = make_db(engine, options=tiny_options(write_buffer_size=kb(8)))
        self.fill(engine, db, 300)

        def deleter():
            for i in range(0, 300, 2):
                yield from db.delete(key(i))

        run_op(engine, deleter())
        run_op(engine, db.flush_all())
        run_op(engine, db.wait_idle())
        assert run_op(engine, db.get(key(2))) is None
        assert run_op(engine, db.get(key(3))) == ValueRef(3, 100)

    def test_memtable_switches_counted(self, engine):
        db = make_db(engine, options=tiny_options(write_buffer_size=kb(4)))
        self.fill(engine, db, 200)
        assert db.stats.get("memtable.switches") >= 2

    def test_wal_released_after_flush(self, engine):
        db = make_db(engine, options=tiny_options(write_buffer_size=kb(4)))
        self.fill(engine, db, 300)
        run_op(engine, db.flush_all())
        live = db.wal.live_logs()
        assert len(live) <= 2  # only current (+ maybe one in-flight)

    def test_level_invariants_maintained(self, engine):
        db = make_db(engine, options=tiny_options(write_buffer_size=kb(4)))
        self.fill(engine, db, 3000)
        run_op(engine, db.flush_all())
        run_op(engine, db.wait_idle())
        db.versions.current.check_invariants()

    def test_property_values(self, engine):
        db = make_db(engine)
        run_op(engine, db.put(key(1), b"v"))
        assert db.property_value("cur-size-active-mem-table") > 0
        assert db.property_value("num-files-at-level0") == 0
        assert db.property_value("num-immutable-mem-table") == 0
        assert db.property_value("pending-compaction-bytes") == 0
        with pytest.raises(DBError):
            db.property_value("nope")


class TestScan:
    def test_scan_merges_memtable_and_sst(self, engine):
        db = make_db(engine, options=tiny_options(write_buffer_size=kb(8)))
        for i in range(0, 100, 2):
            run_op(engine, db.put(key(i), ValueRef(i, 50)))
        run_op(engine, db.flush_all())
        for i in range(1, 100, 2):  # odd keys stay in the memtable
            run_op(engine, db.put(key(i), ValueRef(i, 50)))
        out = run_op(engine, db.scan(key(10), key(20)))
        assert [k for k, _ in out] == [key(i) for i in range(10, 20)]

    def test_scan_respects_limit(self, engine):
        db = make_db(engine)
        for i in range(50):
            run_op(engine, db.put(key(i), b"v"))
        out = run_op(engine, db.scan(key(0), key(50), limit=7))
        assert len(out) == 7

    def test_scan_skips_tombstones(self, engine):
        db = make_db(engine)
        run_op(engine, db.put(key(1), b"a"))
        run_op(engine, db.put(key(2), b"b"))
        run_op(engine, db.delete(key(1)))
        out = run_op(engine, db.scan(key(0), key(10)))
        assert out == [(key(2), b"b")]

    def test_scan_empty_range(self, engine):
        db = make_db(engine)
        assert run_op(engine, db.scan(key(5), key(5))) == []


class TestWalModes:
    def test_wal_off_still_serves_reads(self, engine):
        db = make_db(engine, options=tiny_options(wal_mode=WAL_OFF))
        run_op(engine, db.put(key(1), b"v"))
        assert run_op(engine, db.get(key(1))) == b"v"
        assert db.wal.current is None

    def test_wal_bytes_accumulate_in_buffered_mode(self, engine):
        db = make_db(engine)
        run_op(engine, db.put(key(1), b"v" * 100))
        assert db.wal.bytes_written > 100


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=120),
            st.one_of(st.none(), st.binary(min_size=1, max_size=20)),
        ),
        min_size=1,
        max_size=250,
    )
)
def test_db_matches_dict_model(ops):
    """Property: any interleaving of puts/deletes behaves like a dict,
    across memtable switches, flushes and compactions."""
    engine = Engine()
    db = make_db(
        engine,
        profile=xpoint_ssd(),
        options=tiny_options(write_buffer_size=kb(2), max_bytes_for_level_base=kb(8)),
    )
    model = {}

    def driver():
        for key_index, value in ops:
            k = b"%06d" % key_index
            if value is None:
                yield from db.delete(k)
                model.pop(k, None)
            else:
                yield from db.put(k, value)
                model[k] = value

    run_op(engine, driver())
    run_op(engine, db.flush_all())
    run_op(engine, db.wait_idle())

    def checker():
        for k in {b"%06d" % i for i, _ in ops}:
            got = yield from db.get(k)
            assert got == model.get(k), (k, got, model.get(k))

    run_op(engine, checker())
