"""Tests for CompactRange and GetApproximateSizes analogs."""

import pytest

from repro.lsm.format import KIND_DELETE
from repro.lsm.value import ValueRef
from repro.sim.units import kb
from tests.conftest import make_db, run_op, tiny_options


def key(i):
    return b"%010d" % i


def filled_db(engine, n=600):
    db = make_db(engine, options=tiny_options(write_buffer_size=kb(8)))

    def writer():
        for i in range(n):
            yield from db.put(key(i), ValueRef(i, 64))

    run_op(engine, writer())
    return db


class TestCompactRange:
    def test_pushes_data_to_bottom(self, engine):
        db = filled_db(engine)
        run_op(engine, db.compact_range())
        shape = db.level_shape()
        assert shape[0] == 0  # L0 emptied
        populated = [lvl for lvl, n in enumerate(shape) if n > 0]
        assert len(populated) == 1  # one compacted level holds everything

    def test_data_intact_after_manual_compaction(self, engine):
        db = filled_db(engine)
        run_op(engine, db.compact_range())
        for i in (0, 299, 599):
            assert run_op(engine, db.get(key(i))) == ValueRef(i, 64)

    def test_tombstones_purged(self, engine):
        db = filled_db(engine)

        def deleter():
            for i in range(0, 600, 3):
                yield from db.delete(key(i))

        run_op(engine, deleter())
        run_op(engine, db.compact_range())
        kinds = [
            e[1]
            for meta in db.versions.current.all_files()
            for _, e in meta.sst.items()
        ]
        assert KIND_DELETE not in kinds
        assert run_op(engine, db.get(key(3))) is None
        assert run_op(engine, db.get(key(4))) == ValueRef(4, 64)

    def test_partial_range(self, engine):
        db = filled_db(engine)
        run_op(engine, db.compact_range(key(0), key(100)))
        for i in (0, 50, 599):
            assert run_op(engine, db.get(key(i))) == ValueRef(i, 64)

    def test_counted_in_stats(self, engine):
        db = filled_db(engine, n=50)
        run_op(engine, db.compact_range())
        assert db.stats.get("manual_compactions") == 1


class TestApproximateSize:
    def test_empty_range(self, engine):
        db = filled_db(engine, n=100)
        assert db.approximate_size(key(5), key(5)) == 0
        assert db.approximate_size(key(9000), key(9999)) == 0

    def test_full_range_close_to_total(self, engine):
        db = filled_db(engine)
        run_op(engine, db.compact_range())
        total = int(db.property_value("total-sst-bytes"))
        approx = db.approximate_size(key(0), key(10**9))
        assert approx == pytest.approx(total, rel=0.05)

    def test_half_range_roughly_half(self, engine):
        db = filled_db(engine)
        run_op(engine, db.compact_range())
        full = db.approximate_size(key(0), key(10**9))
        half = db.approximate_size(key(0), key(300))
        assert half == pytest.approx(full / 2, rel=0.2)

    def test_monotone_in_range(self, engine):
        db = filled_db(engine, n=400)
        run_op(engine, db.compact_range())
        a = db.approximate_size(key(0), key(100))
        b = db.approximate_size(key(0), key(200))
        c = db.approximate_size(key(0), key(400))
        assert a < b < c
