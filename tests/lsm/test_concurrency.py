"""Concurrency tests: many simulated clients sharing one DB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.value import ValueRef
from repro.sim.engine import Engine
from repro.sim.units import kb
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_db, tiny_options


def key(i):
    return b"%010d" % i


def run_all(engine, procs):
    done = [engine.process(p, name=f"client-{i}") for i, p in enumerate(procs)]
    for proc in done:
        proc.callbacks.append(lambda _ev: None)
    engine.run()
    for proc in done:
        if proc.exception is not None:
            raise proc.exception
    return done


def test_disjoint_writers_all_visible(engine):
    db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())
    n_clients, per_client = 8, 100

    def writer(base):
        for i in range(per_client):
            yield from db.put(key(base + i), ValueRef(base + i, 64))

    run_all(engine, [writer(c * 1000) for c in range(n_clients)])

    def checker():
        for c in range(n_clients):
            for i in range(0, per_client, 9):
                got = yield from db.get(key(c * 1000 + i))
                assert got == ValueRef(c * 1000 + i, 64)

    run_all(engine, [checker()])


def test_group_commit_batches_concurrent_writers(engine):
    db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())

    def writer(base):
        for i in range(50):
            yield from db.put(key(base + i), b"v" * 64)

    run_all(engine, [writer(c * 1000) for c in range(16)])
    total_writers = sum(q.writers_grouped for q in db.write_queues)
    total_groups = sum(q.groups_formed for q in db.write_queues)
    assert total_writers == 16 * 50
    # With 16 concurrent writers, group commit must actually batch.
    assert total_groups < total_writers


def test_readers_concurrent_with_compaction(engine):
    """Readers holding version references survive file turnover."""
    db = make_db(
        engine,
        profile=xpoint_ssd(),
        options=tiny_options(write_buffer_size=kb(4)),
    )

    def writer():
        for i in range(2500):
            yield from db.put(key(i % 500), ValueRef(i, 64))

    def reader():
        misses = 0
        for i in range(800):
            value = yield from db.get(key(i % 500))
            if value is None:
                misses += 1
        return misses

    procs = run_all(engine, [writer(), reader(), reader()])
    # Compactions definitely ran while readers were active.
    assert db.stats.get("compaction.count") >= 1
    for proc in procs[1:]:
        assert proc.value is not None


def test_sequence_numbers_strictly_increasing_across_groups(engine):
    db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())

    def writer(base):
        for i in range(40):
            yield from db.put(key(base + i), b"v")

    run_all(engine, [writer(c * 100) for c in range(6)])
    assert db.versions.last_sequence == 6 * 40


def test_interleaved_read_write_same_key(engine):
    """A reader always sees either the old or the new value, never garbage."""
    db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())
    db.run_sync(db.put(key(1), b"v0"))
    seen = []

    def flipper():
        for gen in range(1, 30):
            yield from db.put(key(1), b"v%d" % gen)

    def watcher():
        for _ in range(60):
            value = yield from db.get(key(1))
            seen.append(value)
            yield 1000

    run_all(engine, [flipper(), watcher()])
    assert all(v is not None and v.startswith(b"v") for v in seen)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_concurrent_run_deterministic(seed):
    """The same seed gives a bit-identical concurrent execution."""
    def trace(run_seed):
        engine = Engine()
        db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())
        from repro.sim.rng import RandomStream

        rng = RandomStream(run_seed, "conc")
        stamps = []

        def client(cid):
            for i in range(30):
                if rng.chance(0.5):
                    yield from db.put(key(cid * 100 + i), b"v")
                else:
                    yield from db.get(key(cid * 100 + i))
                stamps.append(engine.now)

        for cid in range(4):
            engine.process(client(cid))
        engine.run()
        return stamps

    assert trace(seed) == trace(seed)
