"""SstFileManager: compaction-space reservation and deferred deletion."""

from repro.fs.filesystem import EXTENT_BYTES
from repro.lsm.sst_file_manager import SstFileManager
from repro.sim.units import kb
from tests.conftest import tiny_options


class _FakeVersions:
    manifest_dirty = False


def make_manager(null_fs, **opts):
    mgr = SstFileManager(null_fs, tiny_options(**opts))
    mgr.bind(_FakeVersions())
    return mgr


class TestReservation:
    def test_no_quota_always_fits(self, null_fs):
        mgr = make_manager(null_fs)
        assert mgr.try_reserve_compaction(10**12)
        assert mgr.reserved_bytes == 10**12
        mgr.release_compaction(10**12)
        assert mgr.reserved_bytes == 0

    def test_reservations_stack_against_free_space(self, null_fs):
        null_fs.set_quota(4 * EXTENT_BYTES)
        mgr = make_manager(null_fs)
        assert mgr.try_reserve_compaction(2 * EXTENT_BYTES)
        assert mgr.try_reserve_compaction(2 * EXTENT_BYTES)
        # Free space is fully spoken for: the third reservation fails.
        assert not mgr.try_reserve_compaction(1)
        mgr.release_compaction(2 * EXTENT_BYTES)
        assert mgr.try_reserve_compaction(EXTENT_BYTES)

    def test_release_clamps_at_zero(self, null_fs):
        mgr = make_manager(null_fs)
        mgr.release_compaction(123)
        assert mgr.reserved_bytes == 0


class TestLowOnSpace:
    def test_no_quota_is_never_low(self, null_fs):
        assert not make_manager(null_fs).low_on_space()

    def test_threshold_counts_reservations(self, null_fs):
        null_fs.set_quota(4 * EXTENT_BYTES)
        mgr = make_manager(null_fs, low_space_stall_bytes=kb(64))
        assert not mgr.low_on_space()
        # Reserve all but the threshold: now we are low.
        mgr.try_reserve_compaction(4 * EXTENT_BYTES - kb(64))
        assert mgr.low_on_space()
        mgr.release_compaction(4 * EXTENT_BYTES - kb(64))
        assert not mgr.low_on_space()


class TestDeferredDeletion:
    def test_immediate_delete_when_manifest_clean(self, null_fs):
        mgr = make_manager(null_fs)
        null_fs.create("sst/000001.sst").append(kb(4))
        mgr.delete_file("sst/000001.sst")
        assert not null_fs.exists("sst/000001.sst")
        assert not mgr.pending_deletions

    def test_deferred_while_manifest_dirty(self, null_fs):
        mgr = make_manager(null_fs)
        null_fs.create("sst/000001.sst").append(kb(4))
        mgr._versions.manifest_dirty = True
        mgr.delete_file("sst/000001.sst")
        # The file survives (crash now must recover the old version).
        assert null_fs.exists("sst/000001.sst")
        assert mgr.pending_deletion_bytes == kb(4)

        mgr._versions.manifest_dirty = False
        assert mgr.flush_pending_deletions() == 1
        assert not null_fs.exists("sst/000001.sst")
        assert mgr.pending_deletion_bytes == 0

    def test_missing_file_deletion_is_harmless(self, null_fs):
        mgr = make_manager(null_fs)
        mgr.delete_file("sst/none.sst")
        mgr._versions.manifest_dirty = True
        mgr.delete_file("sst/none2.sst")
        mgr._versions.manifest_dirty = False
        assert mgr.flush_pending_deletions() == 0

    def test_describe_shape(self, null_fs):
        null_fs.set_quota(EXTENT_BYTES)
        mgr = make_manager(null_fs)
        d = mgr.describe()
        assert d["quota_bytes"] == EXTENT_BYTES
        assert d["reserved_bytes"] == 0
        assert d["pending_deletions"] == 0
