"""Differential property tests: the LSM stack vs a plain-dict reference.

A seeded random op sequence (put / overwrite / delete / get / iterate)
runs against both the system under test and a dict that applies the same
ops; any divergence is a correctness bug.  Two layers are tested
separately so a failure localises itself: the MemTable alone (both reps),
and the full DB (memtables + flush + compaction + WAL) on a real device
profile so background work interleaves with the checks.

Seeds come from :mod:`repro.sim.rng` streams, so every sequence is
reproducible from the printed seed.
"""

from __future__ import annotations

import pytest

from repro.lsm.db import DB
from repro.lsm.format import KIND_DELETE, KIND_PUT
from repro.lsm.memtable import MemTable
from repro.lsm.options import HASH_REP, SKIPLIST_REP
from repro.sim.rng import RandomStream
from repro.sim.units import kb
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_fs, run_op, tiny_options


def _key(rng: RandomStream, space: int) -> bytes:
    return b"key%05d" % rng.randint(0, space - 1)


def _value(rng: RandomStream, tag: int) -> bytes:
    return b"v%08d" % tag + b"." * rng.randint(0, 24)


class TestMemTableDifferential:
    @pytest.mark.parametrize("rep", [SKIPLIST_REP, HASH_REP])
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_random_ops_match_dict(self, rep, seed):
        rng = RandomStream(seed, f"diff/memtable/{rep}")
        mt = MemTable(rep=rep, rng=rng.fork("rep"))
        model = {}
        seq = 0
        for i in range(600):
            key = _key(rng, 60)
            roll = rng.uniform(0.0, 1.0)
            if roll < 0.55:  # put (overwrites hit ~half the time at 60 keys)
                seq += 1
                value = _value(rng, i)
                mt.add(key, (seq, KIND_PUT, value))
                model[key] = value
            elif roll < 0.75:  # delete (tombstone)
                seq += 1
                mt.add(key, (seq, KIND_DELETE, None))
                model[key] = None
            else:  # point lookup
                entry = mt.get(key)
                if key not in model:
                    assert entry is None
                elif model[key] is None:
                    assert entry is not None and entry[1] == KIND_DELETE
                else:
                    assert entry is not None and entry[2] == model[key]

        # Full ordered iteration must agree with the sorted model,
        # tombstones included (flush relies on this order).
        items = list(mt.sorted_items())
        assert [k for k, _ in items] == sorted(model)
        for key, entry in items:
            if model[key] is None:
                assert entry[1] == KIND_DELETE
            else:
                assert entry[1] == KIND_PUT and entry[2] == model[key]

    @pytest.mark.parametrize("seed", [3, 11])
    def test_reps_agree_with_each_other(self, seed):
        """The two reps are interchangeable: same inserts, same contents."""
        rng = RandomStream(seed, "diff/reps")
        a = MemTable(rep=SKIPLIST_REP, rng=rng.fork("skip"))
        b = MemTable(rep=HASH_REP)
        for i in range(300):
            key = _key(rng, 40)
            entry = (i + 1, KIND_PUT, _value(rng, i))
            a.add(key, entry)
            b.add(key, entry)
        assert list(a.sorted_items()) == list(b.sorted_items())
        assert a.entry_count == b.entry_count


class TestDBDifferential:
    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [2, 19, 41])
    def test_random_ops_match_dict(self, engine, seed):
        """Puts/deletes/gets/scans against a DB small enough to flush+compact."""
        rng = RandomStream(seed, "diff/db")
        fs = make_fs(engine, profile=xpoint_ssd())
        db = DB(
            engine,
            fs,
            tiny_options(write_buffer_size=kb(4), max_bytes_for_level_base=kb(16)),
        )
        model = {}

        def driver():
            for i in range(400):
                key = _key(rng, 50)
                roll = rng.uniform(0.0, 1.0)
                if roll < 0.50:
                    value = _value(rng, i)
                    yield from db.put(key, value)
                    model[key] = value
                elif roll < 0.70:
                    yield from db.delete(key)
                    model.pop(key, None)
                elif roll < 0.90:
                    got = yield from db.get(key)
                    assert got == model.get(key), f"get({key}) diverged at op {i}"
                else:
                    lo = _key(rng, 50)
                    hi = lo + b"\xff"
                    got = yield from db.scan(lo, hi)
                    expect = sorted(
                        (k, v) for k, v in model.items() if lo <= k < hi
                    )
                    assert got == expect, f"scan[{lo},{hi}) diverged at op {i}"

        run_op(engine, driver())
        run_op(engine, db.wait_idle())

        # Final sweep: every key the model knows (and a miss probe) agrees.
        def checker():
            for key in sorted(model):
                got = yield from db.get(key)
                assert got == model[key]
            miss = yield from db.get(b"key99999")
            assert miss is None

        run_op(engine, checker())
        assert db.stats.get("flush.count") > 0, "workload never exercised flush"
