"""Tests for SSTables: build, block layout, lookup, iteration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DBError
from repro.lsm.format import KIND_DELETE, KIND_PUT, entry_file_bytes
from repro.lsm.sst import SSTBuilder, SSTable
from repro.lsm.value import ValueRef


def build(n=100, value_size=100, block_size=1024, bloom=0, start=0, stride=1):
    b = SSTBuilder(1, block_size, bloom)
    for i in range(start, start + n * stride, stride):
        b.add(b"%08d" % i, (i + 1, KIND_PUT, ValueRef(i, value_size)))
    return b.finish()


class TestBuilder:
    def test_requires_sorted_keys(self):
        b = SSTBuilder(1, 1024, 0)
        b.add(b"b", (1, KIND_PUT, b"x"))
        with pytest.raises(DBError):
            b.add(b"a", (2, KIND_PUT, b"x"))
        with pytest.raises(DBError):
            b.add(b"b", (3, KIND_PUT, b"x"))  # duplicates rejected too

    def test_empty_finish_raises(self):
        with pytest.raises(DBError):
            SSTBuilder(1, 1024, 0).finish()

    def test_estimated_bytes_tracks_entries(self):
        b = SSTBuilder(1, 1024, 0)
        b.add(b"k1", (1, KIND_PUT, ValueRef(0, 100)))
        assert b.estimated_bytes == entry_file_bytes(b"k1", (1, KIND_PUT, ValueRef(0, 100)))

    def test_entry_count(self):
        b = SSTBuilder(1, 1024, 0)
        assert b.empty()
        b.add(b"k", (1, KIND_PUT, b"v"))
        assert b.entry_count == 1
        assert not b.empty()


class TestTable:
    def test_metadata(self):
        sst = build(50)
        assert sst.entry_count == 50
        assert sst.smallest == b"%08d" % 0
        assert sst.largest == b"%08d" % 49
        assert sst.block_count >= 5  # 108B entries, 1KB blocks
        assert sst.file_bytes > sst.data_bytes

    def test_find_present_and_absent(self):
        sst = build(50, stride=2)
        assert sst.find(b"%08d" % 4) is not None
        assert sst.find(b"%08d" % 5) is None  # gap between keys
        assert sst.find(b"%08d" % 998) is None

    def test_key_in_range(self):
        sst = build(10, start=100)
        assert sst.key_in_range(b"%08d" % 100)
        assert sst.key_in_range(b"%08d" % 105)
        assert not sst.key_in_range(b"%08d" % 99)
        assert not sst.key_in_range(b"%08d" % 110)

    def test_overlaps(self):
        sst = build(10, start=100)
        lo, hi = sst.smallest, sst.largest
        assert sst.overlaps(lo, hi)
        assert sst.overlaps(b"%08d" % 0, b"%08d" % 100)
        assert not sst.overlaps(b"%08d" % 0, b"%08d" % 99)
        assert sst.overlaps(b"%08d" % 109, b"%08d" % 999)
        assert not sst.overlaps(b"%08d" % 110, b"%08d" % 999)

    def test_block_spans_cover_data_exactly(self):
        sst = build(100)
        total = 0
        prev_end = 0
        for idx in range(sst.block_count):
            offset, nbytes = sst.block_span(idx)
            assert offset == prev_end
            prev_end = offset + nbytes
            total += nbytes
        assert total == sst.data_bytes

    def test_block_span_out_of_range(self):
        sst = build(10)
        with pytest.raises(DBError):
            sst.block_span(sst.block_count)

    def test_block_for_key_finds_containing_block(self):
        sst = build(100)
        for i in (0, 17, 50, 99):
            key = b"%08d" % i
            block = sst.block_for_key(key)
            first = sst._block_first[block]
            last = (
                sst._block_first[block + 1] - 1
                if block + 1 < sst.block_count
                else sst.entry_count - 1
            )
            assert sst.keys[first] <= key <= sst.keys[last]

    def test_blocks_respect_block_size(self):
        sst = build(100, value_size=100, block_size=1024)
        for idx in range(sst.block_count):
            _, nbytes = sst.block_span(idx)
            assert nbytes <= 1024

    def test_items_iteration(self):
        sst = build(10)
        items = list(sst.items())
        assert len(items) == 10
        assert items[0][0] == sst.smallest

    def test_items_from(self):
        sst = build(10, stride=10)
        tail = list(sst.items_from(b"%08d" % 45))
        assert [k for k, _ in tail] == [b"%08d" % i for i in range(50, 100, 10)]

    def test_bloom_wired_in(self):
        sst = build(100, bloom=10)
        assert sst.bloom is not None
        assert all(sst.may_contain(k) for k in sst.keys)
        assert sst.may_contain(b"definitely-absent") in (True, False)

    def test_no_bloom_always_maybe(self):
        sst = build(10)
        assert sst.may_contain(b"whatever")

    def test_tombstones_supported(self):
        b = SSTBuilder(1, 1024, 0)
        b.add(b"dead", (5, KIND_DELETE, None))
        sst = b.finish()
        assert sst.find(b"dead") == (5, KIND_DELETE, None)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(DBError):
            SSTable(1, [b"a"], [], 1024)

    def test_empty_table_rejected(self):
        with pytest.raises(DBError):
            SSTable(1, [], [], 1024)


@given(
    indices=st.sets(st.integers(min_value=0, max_value=5000), min_size=1, max_size=300),
    block_size=st.sampled_from([256, 1024, 4096]),
)
def test_lookup_agrees_with_dict(indices, block_size):
    """Property: find() over any key set equals a dict lookup."""
    ordered = sorted(indices)
    b = SSTBuilder(1, block_size, 0)
    model = {}
    for i in ordered:
        key = b"%08d" % i
        entry = (i + 1, KIND_PUT, ValueRef(i, 50))
        b.add(key, entry)
        model[key] = entry
    sst = b.finish()
    for i in range(0, 5001, 37):
        key = b"%08d" % i
        assert sst.find(key) == model.get(key)
    # Block mapping must locate the correct block for every present key.
    for key in model:
        block = sst.block_for_key(key)
        offset, nbytes = sst.block_span(block)
        assert 0 <= offset < sst.data_bytes
        assert nbytes > 0
