"""Tests for the CPU cost model — including the paper-calibrated points."""

import pytest

from repro.lsm.costs import DEFAULT_COSTS, CostModel
from repro.sim.units import MB, us


def entries_for(file_bytes, entry_bytes=1024 + 16 + 8):
    return file_bytes // entry_bytes


class TestPaperCalibration:
    def test_l0_search_32mb_file(self):
        """Section IV-B: ~8.5 us for a 32 MB Level-0 file (1 KB values)."""
        cost = DEFAULT_COSTS.sst_search(entries_for(32 * MB))
        assert cost == pytest.approx(us(8.5), rel=0.1)

    def test_l0_search_256mb_file(self):
        """Section IV-B: ~9.7 us for a 256 MB Level-0 file."""
        cost = DEFAULT_COSTS.sst_search(entries_for(256 * MB))
        assert cost == pytest.approx(us(9.7), rel=0.1)

    def test_l0_search_grows_by_1_2us_per_8x(self):
        small = DEFAULT_COSTS.sst_search(entries_for(32 * MB))
        large = DEFAULT_COSTS.sst_search(entries_for(256 * MB))
        assert large - small == pytest.approx(us(1.2), rel=0.15)


class TestScaling:
    def test_memtable_insert_logarithmic(self):
        c = DEFAULT_COSTS
        assert c.memtable_insert(10) < c.memtable_insert(10_000)
        # Doubling N adds one level: constant increment.
        d1 = c.memtable_insert(2048) - c.memtable_insert(1024)
        d2 = c.memtable_insert(4096) - c.memtable_insert(2048)
        assert d1 == d2 == c.memtable_insert_per_level_ns

    def test_lookup_cheaper_than_insert(self):
        c = DEFAULT_COSTS
        for n in (10, 1000, 100_000):
            assert c.memtable_lookup(n) < c.memtable_insert(n)

    def test_deep_level_search_cheaper_than_l0(self):
        """L1+ index binary search << the L0 SkipList-file walk."""
        c = DEFAULT_COSTS
        for n in (1000, 100_000):
            assert c.sst_index_search(n) < c.sst_search(n)

    def test_wal_serialize_linear_in_bytes(self):
        c = DEFAULT_COSTS
        base = c.wal_serialize(0)
        assert c.wal_serialize(2000) - base == 2 * (c.wal_serialize(1000) - base)

    def test_background_costs_linear(self):
        c = DEFAULT_COSTS
        assert c.flush_entries(100) == 100 * c.flush_entry_ns
        assert c.compaction_entries(100) == 100 * c.compaction_entry_ns

    def test_compaction_slower_than_flush_per_entry(self):
        """Merging costs more than streaming out a sorted memtable."""
        assert DEFAULT_COSTS.compaction_entry_ns > DEFAULT_COSTS.flush_entry_ns

    def test_empty_structure_costs_positive(self):
        c = DEFAULT_COSTS
        assert c.memtable_insert(0) > 0
        assert c.memtable_lookup(0) > 0
        assert c.sst_search(0) > 0

    def test_custom_model_overrides(self):
        c = CostModel(memtable_insert_base_ns=us(10))
        assert c.memtable_insert(0) >= us(10)
