"""Tests for the cluster DST harness (repro.dst.cluster)."""

import pytest

from repro.dst import ClusterDstConfig, ClusterDstRun
from repro.dst.__main__ import _cluster_seed_worker
from repro.faults import CRASH, HEAL, PARTITION, FaultSchedule, FaultSpec
from repro.perf.parallel import imap_points
from repro.sim.units import ms


pytestmark = pytest.mark.dst


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_same_seed_same_run(self, seed):
        """Two in-process runs of one seed are byte-identical — event log,
        verdict, final leader-log digest, and fault schedule all match."""
        a = ClusterDstRun(seed, ClusterDstConfig(num_ops=80)).run()
        b = ClusterDstRun(seed, ClusterDstConfig(num_ops=80)).run()
        assert a.events == b.events
        assert a.verdict == b.verdict
        assert a.log_digest == b.log_digest
        assert a.schedule_json == b.schedule_json

    def test_different_seeds_diverge(self):
        a = ClusterDstRun(1, ClusterDstConfig(num_ops=80)).run()
        b = ClusterDstRun(2, ClusterDstConfig(num_ops=80)).run()
        assert a.events != b.events

    def test_serial_and_parallel_sweeps_match(self):
        """Per-node/link RNG substreams make --jobs a pure speedup: the
        parallel sweep's results are byte-identical to the serial loop's."""
        items = [(seed, {"num_ops": 60}, False) for seed in range(6)]
        serial = [r for r, _ in imap_points(_cluster_seed_worker, items, jobs=1)]
        parallel = [r for r, _ in imap_points(_cluster_seed_worker, items, jobs=2)]
        for a, b in zip(serial, parallel):
            assert a.events == b.events
            assert a.log_digest == b.log_digest
            assert a.verdict == b.verdict


class TestVerdicts:
    def test_clean_run_commits_everything(self):
        result = ClusterDstRun(5, ClusterDstConfig(num_ops=60, faults=False)).run()
        assert result.ok, result.reason
        assert result.crashes == 0
        assert result.writes_acked == result.writes_issued
        assert result.converged

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(12))
    def test_seed_sweep_holds_invariants(self, seed):
        """A slice of the CI sweep: random crash/partition/net faults, all
        cluster invariants (acked durability, prefix convergence, one
        leader per term, no resurrection)."""
        result = ClusterDstRun(seed, ClusterDstConfig()).run()
        assert result.ok, f"seed {seed}: {result.reason}\n" + "\n".join(
            result.events[-25:]
        )


class TestCrashPartitionProperty:
    """Quorum-acked writes survive crash x partition combinations, and
    divergent unacked tails are truncated, never resurrected."""

    def schedule_for(self, leader_id, horizon):
        # Isolate the current leader mid-run, crash it inside the window,
        # heal later: the classic lost-update recipe.  Writes it acked
        # before the partition must survive; whatever it appended alone
        # must be cut on rejoin.
        return FaultSchedule(
            [
                FaultSpec(PARTITION, at_time=horizon // 3, until_time=horizon, nodes=(leader_id,)),
                FaultSpec(CRASH, at_time=horizon // 2, node=leader_id),
                FaultSpec(HEAL, at_time=(2 * horizon) // 3),
            ]
        )

    @pytest.mark.parametrize("seed", [0, 2, 4, 7, 9])
    def test_acked_survive_and_tails_never_resurrect(self, seed):
        probe = ClusterDstRun(seed, ClusterDstConfig(num_ops=40, faults=False))
        probe.run()
        leader_id = probe.cluster.leader_id
        cfg = ClusterDstConfig(num_ops=100)
        schedule = self.schedule_for(leader_id, cfg.horizon_ns)
        run = ClusterDstRun(seed, ClusterDstConfig(num_ops=100, schedule=schedule))
        result = run.run()
        assert result.ok, f"seed {seed}: {result.reason}\n" + "\n".join(
            result.events[-25:]
        )
        assert result.crashes == 1
        truncated = run.cluster.truncated_identities
        for node in run.cluster.nodes:
            assert not (truncated & {g.identity for g in node.log})
