"""Tests for the storm-then-clear DST (graceful degradation + resume)."""

import pytest

from repro.dst.storm import (
    STORM_IO,
    STORM_MIXED,
    STORM_SPACE,
    StormConfig,
    StormRun,
)

pytestmark = pytest.mark.dst


def _cfg(**overrides):
    """Smaller than the CLI default so the unit sweep stays fast."""
    base = dict(num_ops=250, num_keys=32)
    base.update(overrides)
    return StormConfig(**base)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_same_seed_same_run(self, seed):
        a = StormRun(seed, _cfg()).run()
        b = StormRun(seed, _cfg()).run()
        assert a.events == b.events
        assert a.verdict == b.verdict
        assert (a.kind, a.writes_acked, a.degraded_entries, a.quiesce_ns) == (
            b.kind,
            b.writes_acked,
            b.degraded_entries,
            b.quiesce_ns,
        )

    def test_different_seeds_diverge(self):
        a = StormRun(1, _cfg()).run()
        b = StormRun(2, _cfg()).run()
        assert a.events != b.events


class TestGracefulDegradation:
    def test_io_storm_degrades_and_resumes(self):
        result = StormRun(2, _cfg(kind=STORM_IO)).run()
        assert result.ok, result.reason
        assert result.degraded_entries >= 1
        assert result.resume_successes >= 1
        assert result.quiesce_ns >= 0  # bounded quiesce after the window

    def test_space_storm_degrades_and_resumes(self):
        result = StormRun(0, _cfg(kind=STORM_SPACE)).run()
        assert result.ok, result.reason
        assert result.degraded_entries >= 1
        assert result.resume_successes >= 1
        # ENOSPC is soft: acked writes were only delayed, never rejected
        # as read-only (the space-wait does not escalate).
        assert result.writes_acked == result.writes_issued

    def test_mixed_storm_degrades_and_resumes(self):
        result = StormRun(4, _cfg(kind=STORM_MIXED)).run()
        assert result.ok, result.reason
        assert result.degraded_entries >= 1
        assert result.resume_successes >= 1

    @pytest.mark.slow
    def test_sweep_finds_read_only_and_rejections(self):
        """Across a small sweep, some seed must reach read-only mode and
        surface typed rejections — the hard path, not just the soft one —
        and every seed must still pass the durability + liveness checks."""
        # Full-size runs (the CLI default): short windows can miss the
        # background work entirely on some seeds.
        results = [StormRun(seed, StormConfig()).run() for seed in range(12)]
        for r in results:
            assert r.ok, f"seed {r.seed}: {r.reason}\n" + "\n".join(r.events[-15:])
        assert all(r.degraded_entries >= 1 for r in results)
        assert any(r.went_read_only and r.writes_rejected > 0 for r in results)
        # Unacked writes were rejected, never silently dropped: the two
        # counters partition the issued writes for every seed.
        for r in results:
            assert r.writes_acked + r.writes_rejected == r.writes_issued
