"""Tests for the serving chaos DST harness (``repro.dst.serving``)."""

from __future__ import annotations

import pytest

from repro.dst import ServingDstConfig, ServingDstRun
from repro.dst.__main__ import _serving_seed_worker
from repro.dst.serving import draw_serving_chaos, leader_fault_count
from repro.faults import CRASH, PARTITION, FaultSchedule, FaultSpec
from repro.perf.parallel import imap_points
from repro.sim.rng import RandomStream
from repro.sim.units import ms

pytestmark = pytest.mark.dst


class TestChaosDraw:
    @pytest.mark.parametrize("seed", range(40))
    def test_every_seed_draws_a_leader_affecting_fault(self, seed):
        """The harness's guarantee: no fair-weather seeds.  Every drawn
        schedule crashes a leader or partitions one away mid-traffic."""
        rng = RandomStream(seed, "chaos-draw-test")
        schedule = draw_serving_chaos(rng, ms(100), shards=2, replicas=3)
        assert leader_fault_count(schedule, 3) >= 1
        for spec in schedule.specs:
            assert spec.at_time is not None
            assert spec.at_time < ms(100)

    def test_leader_fault_count_counts_crashes_and_partitions(self):
        schedule = FaultSchedule(
            [
                FaultSpec(CRASH, at_time=ms(1), node=0),
                FaultSpec(PARTITION, at_time=ms(2), until_time=ms(3), nodes=(3,)),
            ]
        )
        assert leader_fault_count(schedule, 3) == 2
        assert leader_fault_count(FaultSchedule(), 3) == 0


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 2])
    def test_same_seed_same_run(self, seed):
        cfg = ServingDstConfig(duration_ns=ms(50))
        a = ServingDstRun(seed, cfg).run()
        b = ServingDstRun(seed, ServingDstConfig(duration_ns=ms(50))).run()
        assert a.events == b.events
        assert a.verdict == b.verdict
        assert a.log_digest == b.log_digest
        assert a.schedule_json == b.schedule_json

    def test_different_seeds_diverge(self):
        a = ServingDstRun(1, ServingDstConfig(duration_ns=ms(50))).run()
        b = ServingDstRun(2, ServingDstConfig(duration_ns=ms(50))).run()
        assert a.events != b.events

    def test_serial_and_parallel_sweeps_match(self):
        """--jobs is a pure speedup: worker results are byte-identical."""
        items = [(seed, {"duration_ns": ms(40)}, False) for seed in range(4)]
        serial = [r for r, _ in imap_points(_serving_seed_worker, items, jobs=1)]
        parallel = [r for r, _ in imap_points(_serving_seed_worker, items, jobs=2)]
        for a, b in zip(serial, parallel):
            assert a.events == b.events
            assert a.log_digest == b.log_digest
            assert a.verdict == b.verdict


class TestVerdicts:
    def test_clean_run_completes_everything(self):
        result = ServingDstRun(
            3, ServingDstConfig(duration_ns=ms(50), faults=False)
        ).run()
        assert result.ok, result.reason
        assert result.leader_faults == 0
        assert result.shed == 0 and result.errors == 0
        assert result.unresolved == 0
        assert result.converged

    def test_chaos_seed_holds_the_serving_contract(self):
        result = ServingDstRun(0, ServingDstConfig()).run()
        assert result.ok, f"{result.reason}\n" + "\n".join(result.events[-25:])
        assert result.leader_faults >= 1
        assert result.ryw_violations == 0
        assert result.unresolved == 0
        assert result.converged

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(10))
    def test_seed_sweep_holds_invariants(self, seed):
        """A slice of the CI sweep: every seed injects a leader-affecting
        fault during live traffic, and no acked write is lost, no RYW
        violation occurs, no op hangs, all groups re-converge."""
        result = ServingDstRun(seed, ServingDstConfig()).run()
        assert result.ok, f"seed {seed}: {result.reason}\n" + "\n".join(
            result.events[-25:]
        )
        assert result.leader_faults >= 1

    def test_replayed_partition_schedule(self):
        """An explicit leader-isolating partition replays; writes shed
        during the window, everything reconciles after heal."""
        schedule = FaultSchedule(
            [
                FaultSpec(
                    PARTITION,
                    at_time=ms(20),
                    until_time=ms(50),
                    nodes=(0,),  # group 0's initial leader cut off
                )
            ]
        )
        result = ServingDstRun(
            7, ServingDstConfig(duration_ns=ms(80), schedule=schedule)
        ).run()
        assert result.ok, result.reason
        assert result.unresolved == 0

    def test_tenant_rows_carry_resilience_columns(self):
        result = ServingDstRun(0, ServingDstConfig(duration_ns=ms(40))).run()
        for row in result.tenant_rows:
            assert "shed" in row and "errors" in row
            assert "fault_p99_us" in row and "steady_p99_us" in row
