"""Tests for the deterministic-simulation crash-consistency harness."""

import pytest

from repro.dst import DstConfig, DstRun
from repro.faults import CRASH, TORN_APPEND, FaultSchedule, FaultSpec
from repro.sim.units import ms


pytestmark = pytest.mark.dst


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 5, 17])
    def test_same_seed_same_run(self, seed):
        """Two in-process runs of one seed are byte-identical: same event
        log, same verdict, same fault schedule.  This is the property the
        whole harness rests on — a failing seed must replay exactly."""
        a = DstRun(seed, DstConfig(num_ops=120)).run()
        b = DstRun(seed, DstConfig(num_ops=120)).run()
        assert a.events == b.events
        assert a.verdict == b.verdict
        assert a.schedule_json == b.schedule_json
        assert (a.cut, a.writes_acked, a.crash_ns) == (
            b.cut,
            b.writes_acked,
            b.crash_ns,
        )

    def test_different_seeds_diverge(self):
        a = DstRun(1, DstConfig(num_ops=120)).run()
        b = DstRun(2, DstConfig(num_ops=120)).run()
        assert a.events != b.events


class TestVerdicts:
    def test_clean_run_loses_nothing(self):
        """No faults, no crash: every issued write is in the final state."""
        result = DstRun(3, DstConfig(num_ops=150, faults=False)).run()
        assert result.ok, result.reason
        assert result.crash_ns == -1  # clean end-of-run power cut
        assert result.faults_fired == 0
        assert result.cut == result.writes_issued

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(8))
    def test_seed_sweep_recovers_consistently(self, seed):
        """A slice of the CI sweep: random faults + crash, all invariants."""
        result = DstRun(seed, DstConfig(num_ops=200)).run()
        assert result.ok, f"seed {seed}: {result.reason}\n" + "\n".join(
            result.events[-20:]
        )

    def test_explicit_schedule_replayed(self):
        """A caller-supplied schedule overrides the random one (--replay)."""
        schedule = FaultSchedule(
            [
                FaultSpec(TORN_APPEND, path="wal/", at_op=10),
                FaultSpec(CRASH, at_time=ms(2)),
            ]
        )
        config = DstConfig(num_ops=200, schedule=schedule)
        result = DstRun(6, config).run()
        assert result.crash_ns == ms(2)
        assert result.schedule_json == schedule.to_json()
        assert result.ok, result.reason
