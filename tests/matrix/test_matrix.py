"""The declarative experiment matrix: registry, rendering, determinism."""

from __future__ import annotations

import os

import pytest

from repro.errors import WorkloadError
from repro.faults import LATENCY_SPIKE, READ_ERROR, STALL
from repro.matrix.registry import (
    DEVICES,
    SCENARIOS,
    SERVING_SCENARIOS,
    TABLES,
    CellSpec,
    FaultScenario,
    ServingCellSpec,
    ServingScenario,
    ServingTableSpec,
    table_by_id,
)
from repro.matrix.render import (
    begin_marker,
    end_marker,
    extract_block,
    inject_block,
    render_table,
)
from repro.matrix.runner import (
    CELL_METRICS,
    SERVING_CELL_METRICS,
    run_cell,
    run_cells,
    run_serving_cell,
)
from repro.sim.units import ms, seconds, us
from repro.workloads.ycsb import MATRIX_WORKLOADS

pytestmark = pytest.mark.matrix

EXPERIMENTS_MD = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "EXPERIMENTS.md"
)


class TestRegistry:
    def test_tables_are_well_formed(self):
        assert len(TABLES) >= 3
        for table in TABLES.values():
            cells = table.cells()
            assert cells, table.table_id
            assert len(set(cells)) == len(cells)
            for cell in cells:  # cell specs validate on construction
                assert cell.device in DEVICES
                if isinstance(cell, ServingCellSpec):
                    assert cell.scenario in SERVING_SCENARIOS
                else:
                    assert cell.workload in MATRIX_WORKLOADS
                    assert cell.scenario in SCENARIOS

    def test_registered_grids_cover_the_issue_contract(self):
        ycsb = table_by_id("ycsb-devices")
        assert set(ycsb.workloads) == set(MATRIX_WORKLOADS)
        assert ycsb.devices == DEVICES
        grid = table_by_id("fault-grid")
        assert set(grid.scenarios) == {"clean", "io-spikes", "stalls"}
        serving = table_by_id("serving-failover")
        assert isinstance(serving, ServingTableSpec)
        assert set(serving.scenarios) == {
            "steady",
            "leader-crash",
            "leader-partition",
        }
        assert serving.devices == DEVICES

    def test_unknown_lookups_raise(self):
        with pytest.raises(WorkloadError):
            table_by_id("nope")
        with pytest.raises(WorkloadError):
            CellSpec("fault-grid", "sata-flash", "Z", "clean")
        with pytest.raises(WorkloadError):
            CellSpec("fault-grid", "sata-flash", "A", "earthquake")

    def test_scenarios_reject_error_kinds_and_bad_windows(self):
        with pytest.raises(WorkloadError):
            FaultScenario("bad", "bad", kind=READ_ERROR, window=(0.1, 0.5), extra_ns=1)
        with pytest.raises(WorkloadError):
            FaultScenario("bad", "bad", kind=STALL, window=(0.5, 0.1), extra_ns=ms(1))
        with pytest.raises(WorkloadError):
            FaultScenario("bad", "bad", kind=STALL, window=(0.1, 0.5))

    def test_serving_scenarios_validate_and_schedule(self):
        with pytest.raises(WorkloadError):
            ServingScenario("bad", "bad", kind="meteor")
        with pytest.raises(WorkloadError):
            ServingScenario(
                "bad", "bad", kind="leader-crash", window=(0.8, 0.2)
            )
        crash = SERVING_SCENARIOS["leader-crash"]
        (spec,) = crash.schedule(seconds(1.0)).specs
        assert spec.node == 0
        assert spec.at_time == int(seconds(1.0) * crash.window[0])
        part = SERVING_SCENARIOS["leader-partition"]
        (spec,) = part.schedule(seconds(1.0)).specs
        assert spec.nodes == (0,)
        assert spec.until_time == int(seconds(1.0) * part.window[1])
        assert SERVING_SCENARIOS["steady"].schedule(seconds(1.0)) is None
        with pytest.raises(WorkloadError):
            ServingCellSpec("serving-failover", "xpoint", "earthquake")

    def test_scenario_schedules_scale_with_duration(self):
        spikes = SCENARIOS["io-spikes"]
        schedule = spikes.schedule(seconds(1.0))
        (spec,) = schedule.specs
        assert spec.kind == LATENCY_SPIKE
        assert spec.at_time == int(seconds(1.0) * spikes.window[0])
        assert spec.until_time == int(seconds(1.0) * spikes.window[1])
        assert not SCENARIOS["clean"].schedule(seconds(1.0)).specs


class TestRender:
    def _fake_results(self, table):
        metrics = (
            SERVING_CELL_METRICS
            if isinstance(table, ServingTableSpec)
            else CELL_METRICS
        )
        return [
            {m: float(i + j) for j, m in enumerate(metrics)}
            for i in range(len(table.cells()))
        ]

    @pytest.mark.parametrize("table_id", sorted(TABLES))
    def test_blocks_are_marked_and_deterministic(self, table_id):
        table = TABLES[table_id]
        results = self._fake_results(table)
        block = render_table(table, table.cells(), results)
        assert block.startswith(begin_marker(table_id))
        assert block.endswith(end_marker(table_id))
        assert block == render_table(table, table.cells(), results)

    def test_inject_extract_round_trip(self):
        table = TABLES["fault-grid"]
        doc = (
            "# Doc\n\nintro\n\n"
            f"{begin_marker(table.table_id)}\nstale\n{end_marker(table.table_id)}\n\n"
            "outro\n"
        )
        block = render_table(table, table.cells(), self._fake_results(table))
        injected = inject_block(doc, table.table_id, block)
        assert extract_block(injected, table.table_id) == block
        assert injected.startswith("# Doc\n\nintro\n\n")
        assert injected.endswith("\n\noutro\n")
        # Re-injecting the same block is idempotent.
        assert inject_block(injected, table.table_id, block) == injected

    def test_missing_markers_raise(self):
        with pytest.raises(WorkloadError):
            extract_block("no markers here", "fault-grid")
        with pytest.raises(WorkloadError):
            inject_block("no markers here", "fault-grid", "block")

    def test_experiments_md_carries_every_table_block(self):
        with open(EXPERIMENTS_MD, "r", encoding="utf-8") as fh:
            text = fh.read()
        for table_id in TABLES:
            block = extract_block(text, table_id)
            # The committed block is rendered, not a bare marker pair.
            assert "| " in block and table_id in block


class TestExecution:
    CELL = CellSpec("fault-grid", "sata-flash", "A", "clean")

    def test_cells_report_every_metric(self):
        result = run_cell(self.CELL)
        assert set(result) == set(CELL_METRICS)
        assert result["kops"] > 0
        assert result["p99_us"] >= result["p50_us"] > 0
        assert result["faults"] == 0

    def test_fault_cells_fire_and_degrade(self):
        clean = run_cell(self.CELL)
        stalled = run_cell(CellSpec("fault-grid", "sata-flash", "A", "stalls"))
        assert stalled["faults"] > 0
        assert stalled["kops"] < clean["kops"]

    def test_serving_cells_run_through_the_dst_harness(self):
        cell = ServingCellSpec("serving-failover", "xpoint", "leader-crash")
        result = run_serving_cell(cell)
        assert set(result) == set(SERVING_CELL_METRICS)
        assert result["kops"] > 0
        assert result["slo_met"] <= result["tenants"]
        assert run_cell(cell) == result  # run_cell dispatches by spec type

    def test_cells_are_deterministic_and_jobs_invariant(self):
        cells = [
            self.CELL,
            CellSpec("fault-grid", "sata-flash", "A", "io-spikes"),
        ]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert serial == parallel
        assert serial[0] == run_cell(self.CELL)
