"""Tests for the FaultSchedule JSON schema versioning (v1 list / v2 envelope)."""

import json

import pytest

from repro.errors import FaultConfigError
from repro.faults import (
    CRASH,
    HEAL,
    NET_DELAY,
    NET_DROP,
    NET_KINDS,
    PARTITION,
    TORN_APPEND,
    WRITE_ERROR,
    FaultSchedule,
    FaultSpec,
)
from repro.faults.schedule import SCHEMA_VERSION
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us


def v1_schedule():
    return FaultSchedule(
        [
            FaultSpec(WRITE_ERROR, at_time=us(400), count=3),
            FaultSpec(TORN_APPEND, path="wal/", at_op=10),
            FaultSpec(CRASH, at_time=ms(2)),
        ]
    )


def v2_schedule():
    return FaultSchedule(
        [
            FaultSpec(PARTITION, at_time=ms(1), until_time=ms(2), nodes=(0, 2)),
            FaultSpec(HEAL, at_time=ms(3)),
            FaultSpec(NET_DELAY, at_time=ms(1), until_time=ms(4), extra_ns=us(500)),
            FaultSpec(NET_DROP, at_time=ms(2), until_time=ms(5), drop_p=0.25),
            FaultSpec(CRASH, at_time=ms(2), node=1),
        ]
    )


class TestV1Compat:
    def test_v1_specs_emit_bare_list(self):
        """Schedules expressible before the net extension keep the exact
        v1 byte form: saved schedules and DST schedule_json digests replay
        unchanged across the version bump."""
        data = json.loads(v1_schedule().to_json())
        assert isinstance(data, list)
        assert all("node" not in d and "nodes" not in d for d in data)

    def test_v1_bare_list_still_parses(self):
        text = v1_schedule().to_json()
        loaded = FaultSchedule.from_json(text)
        assert loaded == v1_schedule()
        assert loaded.to_json() == text

    def test_v1_envelope_also_accepted(self):
        # A v1 list wrapped in an explicit version-1 envelope is fine too.
        specs = json.loads(v1_schedule().to_json())
        text = json.dumps({"version": 1, "specs": specs})
        assert FaultSchedule.from_json(text) == v1_schedule()


class TestV2:
    def test_net_specs_emit_versioned_envelope(self):
        data = json.loads(v2_schedule().to_json())
        assert isinstance(data, dict)
        assert data["version"] == SCHEMA_VERSION == 2
        assert len(data["specs"]) == 5

    def test_v2_round_trip_preserves_net_fields(self):
        original = v2_schedule()
        loaded = FaultSchedule.from_json(original.to_json())
        assert loaded == original
        part, _heal, delay, drop, crash = loaded.specs
        assert part.nodes == (0, 2)  # tuple restored, not list
        assert delay.extra_ns == us(500)
        assert drop.drop_p == 0.25
        assert crash.node == 1

    def test_single_v2_field_is_enough_for_envelope(self):
        # A targeted crash is a v1 kind but needs the v2 node field.
        schedule = FaultSchedule([FaultSpec(CRASH, at_time=ms(1), node=0)])
        data = json.loads(schedule.to_json())
        assert isinstance(data, dict) and data["version"] == 2


class TestRejection:
    def test_future_version_rejected(self):
        text = json.dumps({"version": SCHEMA_VERSION + 1, "specs": []})
        with pytest.raises(FaultConfigError, match="unsupported"):
            FaultSchedule.from_json(text)

    @pytest.mark.parametrize(
        "text",
        [
            '{"specs": []}',  # missing version
            '{"version": 2}',  # missing specs
            '{"version": "2", "specs": []}',  # non-int version
            '"just a string"',
            "not json at all",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(FaultConfigError):
            FaultSchedule.from_json(text)


class TestRandomCluster:
    @pytest.mark.parametrize("seed", range(6))
    def test_draws_valid_v2_schedules(self, seed):
        rng = RandomStream(seed, "sched")
        schedule = FaultSchedule.random_cluster(rng, ms(50), n_nodes=3)
        assert 1 <= len(schedule) <= 10
        assert any(s.kind in NET_KINDS for s in schedule)
        # Every draw round-trips through the versioned serializer.
        assert FaultSchedule.from_json(schedule.to_json()) == schedule
        for spec in schedule:
            if spec.kind == PARTITION:
                assert 1 <= len(spec.nodes) <= 1  # minority of 3 is 1 node
            if spec.kind == CRASH:
                assert 0 <= spec.node < 3

    def test_too_few_nodes_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule.random_cluster(RandomStream(1), ms(10), n_nodes=1)
