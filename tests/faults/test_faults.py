"""Unit tests for the fault-injection layer (repro.faults)."""

import pytest

from repro.errors import CorruptionError, FaultConfigError, IOFaultError
from repro.faults import (
    CORRUPT_APPEND,
    CORRUPT_SST_BLOCK,
    CRASH,
    LATENCY_SPIKE,
    READ_ERROR,
    STALL,
    TORN_APPEND,
    WRITE_ERROR,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultyDevice,
    FaultyFileSystem,
)
from repro.fs.page_cache import PageCache
from repro.lsm.sst import SSTBuilder
from repro.lsm.wal import scan_log
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import mb, us
from repro.storage.profiles import xpoint_ssd


def make_faulty(engine, schedule):
    injector = FaultInjector(engine, schedule)
    device = FaultyDevice(engine, xpoint_ssd(), injector)
    fs = FaultyFileSystem(engine, device, PageCache(mb(4)), injector)
    return injector, device, fs


def run_gen(engine, gen):
    proc = engine.process(gen, name="op")
    proc.callbacks.append(lambda _ev: None)
    while not proc.done:
        nxt = engine.peek()
        assert nxt is not None
        engine.run(until=nxt)
    if proc.exception is not None:
        raise proc.exception
    return proc.value


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSpec("disk_on_fire")

    def test_bad_count_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(READ_ERROR, count=0)

    def test_latency_needs_magnitude(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(LATENCY_SPIKE, extra_ns=0)

    def test_path_filter_invalid_for_device_faults(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(READ_ERROR, path="wal/")

    def test_json_round_trip(self, tmp_path):
        schedule = FaultSchedule(
            [
                FaultSpec(READ_ERROR, at_op=3, count=2, transient=False),
                FaultSpec(STALL, at_time=us(500), extra_ns=us(100)),
                FaultSpec(TORN_APPEND, path="wal/", at_time=123),
                FaultSpec(CRASH, at_time=999),
            ]
        )
        assert FaultSchedule.from_json(schedule.to_json()).specs == schedule.specs
        path = tmp_path / "sched.json"
        schedule.to_file(str(path))
        assert FaultSchedule.from_file(str(path)).specs == schedule.specs

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule.from_json("not json")
        with pytest.raises(FaultConfigError):
            FaultSchedule.from_json('{"kind": "read_error"}')  # not a list
        with pytest.raises(FaultConfigError):
            FaultSchedule.from_json('[{"kind": "read_error", "bogus": 1}]')

    def test_random_schedule_is_seed_deterministic(self):
        a = FaultSchedule.random(RandomStream(9, "s"), us(1000))
        b = FaultSchedule.random(RandomStream(9, "s"), us(1000))
        c = FaultSchedule.random(RandomStream(10, "s"), us(1000))
        assert a.to_json() == b.to_json()
        assert a.to_json() != c.to_json() or len(a) != len(c)


class TestDeviceFaults:
    def test_read_error_raises_typed_exception(self):
        engine = Engine()
        _, device, _ = make_faulty(
            engine, FaultSchedule([FaultSpec(READ_ERROR, at_op=2)])
        )
        device.read(0, 4096)  # op 1: clean
        with pytest.raises(IOFaultError) as exc_info:
            device.read(0, 4096)  # op 2: fires
        assert exc_info.value.transient
        assert exc_info.value.op == "read"
        device.read(0, 4096)  # spec retired: clean again

    def test_read_error_does_not_match_writes(self):
        engine = Engine()
        _, device, _ = make_faulty(
            engine, FaultSchedule([FaultSpec(READ_ERROR, at_op=1)])
        )
        device.write(0, 4096)  # writes never match a read_error spec
        with pytest.raises(IOFaultError):
            device.read(0, 4096)

    def test_latency_spike_stretches_completion(self):
        extra = us(300)
        baseline = Engine()
        _, clean_dev, _ = make_faulty(baseline, FaultSchedule())
        ev = clean_dev.read(0, 4096)
        baseline.run()
        clean_ns = baseline.now

        engine = Engine()
        _, device, _ = make_faulty(
            engine, FaultSchedule([FaultSpec(LATENCY_SPIKE, extra_ns=extra)])
        )
        ev = device.read(0, 4096)
        fired = []
        ev.callbacks.append(lambda _ev: fired.append(engine.now))
        engine.run()
        assert fired == [clean_ns + extra]

    def test_write_error_surfaces_at_fsync_and_retries(self):
        """Async writeback faults defer to fsync (EIO-on-fsync semantics)."""
        engine = Engine()
        injector, _, fs = make_faulty(
            engine, FaultSchedule([FaultSpec(WRITE_ERROR, at_op=1)])
        )
        f = fs.create("data", writeback_bytes=1 << 30)  # no async writeback

        def op():
            f.append(8192)
            with pytest.raises(IOFaultError):
                yield from f.sync()  # first writeback write faults
            yield from f.sync()  # spec retired: retry succeeds
            return f.synced_size

        assert run_gen(engine, op()) == 8192
        assert fs.stats.get("fsync_errors") == 1
        assert injector.log  # the injected fault is on the record

    def test_crash_at_op_sets_pending_flag(self):
        engine = Engine()
        injector, device, _ = make_faulty(
            engine, FaultSchedule([FaultSpec(CRASH, at_op=3)])
        )
        device.read(0, 512)
        device.write(0, 512)
        assert not injector.crash_pending
        device.read(0, 512)
        assert injector.crash_pending
        assert "crash" in injector.crash_reason

    def test_crash_at_time_fires_via_poll(self):
        engine = Engine()
        injector, _, _ = make_faulty(
            engine, FaultSchedule([FaultSpec(CRASH, at_time=us(100))])
        )
        assert injector.due_crash_time() == us(100)
        assert not injector.poll()
        engine.run(until=us(100))
        assert injector.poll()

    def test_disarm_stops_everything(self):
        engine = Engine()
        injector, device, _ = make_faulty(
            engine, FaultSchedule([FaultSpec(READ_ERROR, count=5)])
        )
        injector.disarm()
        device.read(0, 4096)  # would fire without disarm
        assert not injector.active


class TestFilesystemFaults:
    def test_torn_append_moves_watermark_mid_record(self):
        engine = Engine()
        injector, _, fs = make_faulty(
            engine, FaultSchedule([FaultSpec(TORN_APPEND, path="wal/")])
        )
        f = fs.create("wal/000001.log")
        f.append(1000, record="r1")
        assert 0 < f.synced_size < 1000  # torn: mid-record watermark
        assert fs.stats.get("injected_torn_appends") == 1
        fs.crash()
        assert fs.stats.get("torn_records") == 1

    def test_path_filter_restricts_torn_appends(self):
        engine = Engine()
        _, _, fs = make_faulty(
            engine, FaultSchedule([FaultSpec(TORN_APPEND, path="wal/")])
        )
        other = fs.create("sst/000001.sst")
        other.append(1000, record="r1")
        assert other.synced_size == 0  # untouched: path does not match

    def test_corrupt_append_fails_wal_scan(self):
        engine = Engine()
        from repro.lsm.wal import WalRecord

        _, _, fs = make_faulty(
            engine, FaultSchedule([FaultSpec(CORRUPT_APPEND, path="wal/", at_op=2)])
        )
        f = fs.create("wal/000001.log")
        f.append(100, record=WalRecord([(b"k1", (1, 1, b"v1"))]))
        f.append(100, record=WalRecord([(b"k2", (2, 1, b"v2"))]))
        f.append(100, record=WalRecord([(b"k3", (3, 1, b"v3"))]))
        assert f.is_corrupt(100, 100)
        good, good_bytes, bad = scan_log(f)
        assert len(good) == 1 and good_bytes == 100 and bad == 2

    def test_corrupt_sst_block_breaks_verification(self):
        engine = Engine()
        _, _, fs = make_faulty(
            engine, FaultSchedule([FaultSpec(CORRUPT_SST_BLOCK, path="sst/", block=0)])
        )
        builder = SSTBuilder(1, block_size=512, bloom_bits_per_key=0)
        for i in range(50):
            builder.add(b"k%04d" % i, (i + 1, 1, b"v%04d" % i + b"x" * 48))
        sst = builder.finish()
        assert sst.block_count > 1
        f = fs.create("sst/000001.sst")
        f.payload = sst
        f.append(sst.file_bytes)
        with pytest.raises(CorruptionError):
            sst.verify_block(0, f)
        sst.verify_block(1, f)  # other blocks untouched


class TestInjectorLog:
    def test_event_log_is_deterministic(self):
        def one_run():
            engine = Engine()
            schedule = FaultSchedule.random(RandomStream(4, "s"), us(2000))
            injector, device, fs = make_faulty(engine, schedule)
            f = fs.create("wal/000001.log")
            for i in range(30):
                try:
                    f.append(256, record=f"r{i}")
                    device.read(0, 4096)
                except IOFaultError:
                    pass
                engine.run(until=engine.now + us(100))
            return injector.log

        assert one_run() == one_run()
